// Package datagen generates deterministic synthetic column data for the
// engine simulators and defines the canonical star-schema warehouse used by
// the experiments. The paper's evaluation ran against a 151 GB dataset
// generated from a Vertica customer's data distribution; here we generate a
// scaled-down instantiation with zipfian/uniform value distributions so the
// executors run real scans while the cost models reason about the full
// modeled row counts.
//
// All column values are stored as int64: integer columns hold their value,
// string columns hold dictionary codes (value k renders as "v<k>"), and
// float columns hold scaled integers. This keeps predicate evaluation and
// aggregation uniform across types.
package datagen

import (
	"fmt"
	"math/rand"

	"cliffguard/internal/schema"
)

// Dataset is a physical instantiation of a schema: per-column int64 arrays.
// Physical row counts may be smaller than the schema's modeled row counts
// (the cost models use modeled counts; the executors use physical data).
type Dataset struct {
	Schema *schema.Schema
	rows   map[string]int  // table -> physical row count
	cols   map[int][]int64 // global column ID -> values
}

// Generate materializes data for every table, capping physical rows at
// maxRows per table (0 means no cap). Generation is deterministic in seed.
func Generate(s *schema.Schema, maxRows int, seed int64) *Dataset {
	d := &Dataset{
		Schema: s,
		rows:   make(map[string]int),
		cols:   make(map[int][]int64),
	}
	for _, t := range s.Tables() {
		n := int(t.Rows)
		if maxRows > 0 && n > maxRows {
			n = maxRows
		}
		d.rows[t.Name] = n
		for _, c := range t.Columns {
			rng := rand.New(rand.NewSource(seed ^ int64(c.ID)*0x1E3779B97F4A7C15))
			d.cols[c.ID] = generateColumn(rng, c, n)
		}
	}
	return d
}

// generateColumn fills one column. Low-cardinality columns are zipfian
// (skewed, like dimension keys and categorical attributes); high-cardinality
// columns are uniform.
func generateColumn(rng *rand.Rand, c schema.Column, n int) []int64 {
	vals := make([]int64, n)
	card := c.Cardinality
	if card < 1 {
		card = 1
	}
	if card > 1 && card <= int64(n)/2 {
		z := rand.NewZipf(rng, 1.2, 1, uint64(card-1))
		for i := range vals {
			vals[i] = int64(z.Uint64())
		}
		return vals
	}
	for i := range vals {
		vals[i] = rng.Int63n(card)
	}
	return vals
}

// Rows returns the physical row count of a table.
func (d *Dataset) Rows(table string) int { return d.rows[table] }

// Column returns the physical values of a column by global ID, or nil if the
// dataset does not contain it.
func (d *Dataset) Column(id int) []int64 { return d.cols[id] }

// Warehouse returns the canonical star-schema warehouse used throughout the
// experiments: two wide fact tables (modeled after the analytical anchor
// tables of the paper's R1 customer) plus dimension tables. scale multiplies
// the modeled row counts (scale 1 models a few million fact rows).
func Warehouse(scale int64) *schema.Schema {
	if scale < 1 {
		scale = 1
	}
	factRows := 2_000_000 * scale
	eventRows := 1_200_000 * scale

	salesCols := []schema.ColumnDef{
		{Name: "sale_id", Type: schema.Int64, Cardinality: factRows},
		{Name: "customer_id", Type: schema.Int64, Cardinality: 200_000},
		{Name: "product_id", Type: schema.Int64, Cardinality: 50_000},
		{Name: "store_id", Type: schema.Int64, Cardinality: 500},
		{Name: "promo_id", Type: schema.Int64, Cardinality: 1_000},
		{Name: "channel", Type: schema.String, Cardinality: 8},
		{Name: "region", Type: schema.String, Cardinality: 40},
		{Name: "country", Type: schema.String, Cardinality: 60},
		{Name: "sale_date", Type: schema.Int64, Cardinality: 730},
		{Name: "sale_hour", Type: schema.Int64, Cardinality: 24},
		{Name: "quantity", Type: schema.Int64, Cardinality: 100},
		{Name: "unit_price", Type: schema.Float64, Cardinality: 10_000},
		{Name: "discount_pct", Type: schema.Float64, Cardinality: 100},
		{Name: "total", Type: schema.Float64, Cardinality: 500_000},
		{Name: "tax", Type: schema.Float64, Cardinality: 50_000},
		{Name: "shipping_cost", Type: schema.Float64, Cardinality: 5_000},
		{Name: "margin", Type: schema.Float64, Cardinality: 100_000},
		{Name: "payment_type", Type: schema.String, Cardinality: 6},
		{Name: "currency", Type: schema.String, Cardinality: 20},
		{Name: "loyalty_tier", Type: schema.String, Cardinality: 5},
		{Name: "is_return", Type: schema.Int64, Cardinality: 2},
		{Name: "warehouse_id", Type: schema.Int64, Cardinality: 120},
		{Name: "carrier_id", Type: schema.Int64, Cardinality: 30},
		{Name: "delivery_days", Type: schema.Int64, Cardinality: 30},
		{Name: "order_priority", Type: schema.String, Cardinality: 4},
		{Name: "sales_rep_id", Type: schema.Int64, Cardinality: 2_500},
		{Name: "campaign_id", Type: schema.Int64, Cardinality: 400},
		{Name: "basket_size", Type: schema.Int64, Cardinality: 60},
		{Name: "coupon_code", Type: schema.String, Cardinality: 3_000},
		{Name: "device", Type: schema.String, Cardinality: 12},
		{Name: "referrer", Type: schema.String, Cardinality: 200},
		{Name: "session_len", Type: schema.Int64, Cardinality: 3_600},
		{Name: "clicks", Type: schema.Int64, Cardinality: 500},
		{Name: "cost_of_goods", Type: schema.Float64, Cardinality: 200_000},
		{Name: "list_price", Type: schema.Float64, Cardinality: 10_000},
		{Name: "vendor_id", Type: schema.Int64, Cardinality: 5_000},
		{Name: "category_id", Type: schema.Int64, Cardinality: 300},
		{Name: "subcategory_id", Type: schema.Int64, Cardinality: 2_000},
		{Name: "brand_id", Type: schema.Int64, Cardinality: 1_200},
		{Name: "fiscal_quarter", Type: schema.Int64, Cardinality: 8},
	}

	eventCols := []schema.ColumnDef{
		{Name: "event_id", Type: schema.Int64, Cardinality: eventRows},
		{Name: "user_id", Type: schema.Int64, Cardinality: 300_000},
		{Name: "event_type", Type: schema.String, Cardinality: 50},
		{Name: "event_date", Type: schema.Int64, Cardinality: 730},
		{Name: "event_hour", Type: schema.Int64, Cardinality: 24},
		{Name: "page_id", Type: schema.Int64, Cardinality: 20_000},
		{Name: "app_version", Type: schema.String, Cardinality: 60},
		{Name: "platform", Type: schema.String, Cardinality: 6},
		{Name: "duration_ms", Type: schema.Int64, Cardinality: 60_000},
		{Name: "bytes_sent", Type: schema.Int64, Cardinality: 1_000_000},
		{Name: "bytes_recv", Type: schema.Int64, Cardinality: 1_000_000},
		{Name: "status_code", Type: schema.Int64, Cardinality: 40},
		{Name: "geo_region", Type: schema.String, Cardinality: 40},
		{Name: "isp_id", Type: schema.Int64, Cardinality: 800},
		{Name: "experiment_id", Type: schema.Int64, Cardinality: 150},
		{Name: "variant", Type: schema.String, Cardinality: 8},
		{Name: "error_class", Type: schema.String, Cardinality: 120},
		{Name: "retry_count", Type: schema.Int64, Cardinality: 10},
		{Name: "queue_depth", Type: schema.Int64, Cardinality: 1_000},
		{Name: "latency_ms", Type: schema.Int64, Cardinality: 30_000},
		{Name: "cpu_ms", Type: schema.Int64, Cardinality: 10_000},
		{Name: "cache_hit", Type: schema.Int64, Cardinality: 2},
		{Name: "shard_id", Type: schema.Int64, Cardinality: 256},
		{Name: "tenant_id", Type: schema.Int64, Cardinality: 4_000},
		{Name: "api_method", Type: schema.String, Cardinality: 90},
		{Name: "client_build", Type: schema.Int64, Cardinality: 500},
		{Name: "session_id", Type: schema.Int64, Cardinality: 800_000},
		{Name: "feature_flag", Type: schema.String, Cardinality: 64},
		{Name: "payload_kind", Type: schema.String, Cardinality: 30},
		{Name: "sampled", Type: schema.Int64, Cardinality: 2},
	}

	dim := func(name string, rows int64, extra ...schema.ColumnDef) schema.TableDef {
		cols := []schema.ColumnDef{
			{Name: name + "_key", Type: schema.Int64, Cardinality: rows},
			{Name: "name", Type: schema.String, Cardinality: rows},
		}
		cols = append(cols, extra...)
		return schema.TableDef{Name: name, Rows: rows, Columns: cols}
	}

	defs := []schema.TableDef{
		{Name: "sales", Fact: true, Rows: factRows, Columns: salesCols},
		{Name: "events", Fact: true, Rows: eventRows, Columns: eventCols},
		dim("customers", 200_000,
			schema.ColumnDef{Name: "segment", Type: schema.String, Cardinality: 10},
			schema.ColumnDef{Name: "signup_date", Type: schema.Int64, Cardinality: 2_000},
			schema.ColumnDef{Name: "ltv", Type: schema.Float64, Cardinality: 100_000},
		),
		dim("products", 50_000,
			schema.ColumnDef{Name: "category", Type: schema.String, Cardinality: 300},
			schema.ColumnDef{Name: "brand", Type: schema.String, Cardinality: 1_200},
			schema.ColumnDef{Name: "weight_g", Type: schema.Int64, Cardinality: 10_000},
		),
		dim("stores", 500,
			schema.ColumnDef{Name: "city", Type: schema.String, Cardinality: 400},
			schema.ColumnDef{Name: "sqft", Type: schema.Int64, Cardinality: 400},
		),
		dim("promotions", 1_000,
			schema.ColumnDef{Name: "kind", Type: schema.String, Cardinality: 12},
		),
		dim("vendors", 5_000,
			schema.ColumnDef{Name: "tier", Type: schema.String, Cardinality: 4},
		),
		dim("campaigns", 400,
			schema.ColumnDef{Name: "medium", Type: schema.String, Cardinality: 10},
		),
		dim("carriers", 30),
		dim("warehouses", 120,
			schema.ColumnDef{Name: "zone", Type: schema.String, Cardinality: 8},
		),
		dim("experiments", 150,
			schema.ColumnDef{Name: "owner", Type: schema.String, Cardinality: 50},
		),
		dim("tenants", 4_000,
			schema.ColumnDef{Name: "plan", Type: schema.String, Cardinality: 5},
		),
	}

	// Satellite tables: the paper's R1 schema spans 310 tables and thousands
	// of columns, and delta_euclidean normalizes by the total column count n
	// (Section 5). These small auxiliary tables reproduce that scale — and
	// hence the absolute delta magnitudes of Table 1 — without affecting the
	// fact-table query workload. 400 tables x 12 columns ~ 4800 extra cols.
	types := []schema.ColumnType{schema.Int64, schema.String, schema.Float64}
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("sat_%03d", i)
		cols := []schema.ColumnDef{
			{Name: "id", Type: schema.Int64, Cardinality: 1_000},
		}
		for j := 0; j < 11; j++ {
			cols = append(cols, schema.ColumnDef{
				Name:        fmt.Sprintf("attr_%02d", j),
				Type:        types[(i+j)%len(types)],
				Cardinality: int64(10 + (i*31+j*7)%990),
			})
		}
		defs = append(defs, schema.TableDef{Name: name, Rows: 1_000, Columns: cols})
	}
	s, err := schema.New(defs)
	if err != nil {
		panic(fmt.Sprintf("datagen: warehouse schema invalid: %v", err))
	}
	return s
}
