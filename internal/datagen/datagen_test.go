package datagen

import (
	"testing"
)

func TestWarehouseShape(t *testing.T) {
	s := Warehouse(1)
	if got := len(s.FactTables()); got != 2 {
		t.Fatalf("fact tables = %d, want 2", got)
	}
	// Paper-scale schema: hundreds of tables, thousands of columns (R1 had
	// 310 tables; delta_euclidean's magnitude depends on total column count).
	if got := len(s.Tables()); got < 300 {
		t.Errorf("tables = %d, want >= 300", got)
	}
	if got := s.NumColumns(); got < 3000 {
		t.Errorf("columns = %d, want >= 3000", got)
	}
	sales, ok := s.Table("sales")
	if !ok || !sales.Fact || sales.Rows < 1_000_000 {
		t.Fatalf("sales table malformed: %+v", sales)
	}
	// Scale multiplies fact rows.
	s2 := Warehouse(2)
	sales2, _ := s2.Table("sales")
	if sales2.Rows != 2*sales.Rows {
		t.Errorf("scale 2 rows = %d, want %d", sales2.Rows, 2*sales.Rows)
	}
	// Scale < 1 clamps to 1.
	s0 := Warehouse(0)
	sales0, _ := s0.Table("sales")
	if sales0.Rows != sales.Rows {
		t.Error("scale 0 should clamp to 1")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := Warehouse(1)
	d1 := Generate(s, 2_000, 7)
	d2 := Generate(s, 2_000, 7)
	sales, _ := s.Table("sales")
	col := sales.Columns[3].ID
	a, b := d1.Column(col), d2.Column(col)
	if len(a) != 2_000 || len(b) != 2_000 {
		t.Fatalf("physical rows = %d/%d, want 2000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("generation is not deterministic")
		}
	}
	d3 := Generate(s, 2_000, 8)
	c := d3.Column(col)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateRespectsCardinality(t *testing.T) {
	s := Warehouse(1)
	d := Generate(s, 5_000, 3)
	for _, tbl := range s.FactTables() {
		for _, c := range tbl.Columns {
			vals := d.Column(c.ID)
			for _, v := range vals[:min(len(vals), 1000)] {
				if v < 0 || v >= c.Cardinality {
					t.Fatalf("%s value %d outside [0, %d)", c.Qualified(), v, c.Cardinality)
				}
			}
		}
	}
}

func TestGenerateRowCaps(t *testing.T) {
	s := Warehouse(1)
	d := Generate(s, 1_000, 1)
	if d.Rows("sales") != 1_000 {
		t.Errorf("sales capped rows = %d", d.Rows("sales"))
	}
	// Small tables stay at their modeled size.
	if d.Rows("carriers") != 30 {
		t.Errorf("carriers rows = %d, want 30", d.Rows("carriers"))
	}
	// Unknown table: zero.
	if d.Rows("nope") != 0 {
		t.Error("unknown table should report 0 rows")
	}
	if d.Column(1<<20) != nil {
		t.Error("unknown column should be nil")
	}
}

func TestZipfSkewOnLowCardinality(t *testing.T) {
	s := Warehouse(1)
	d := Generate(s, 20_000, 5)
	// channel has cardinality 8 -> zipfian: value 0 should dominate.
	id, err := s.ResolveIn("sales", "channel")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int64]int)
	for _, v := range d.Column(id) {
		counts[v]++
	}
	if counts[0] <= counts[7] {
		t.Errorf("zipf skew missing: counts[0]=%d counts[7]=%d", counts[0], counts[7])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
