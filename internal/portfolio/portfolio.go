package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cliffguard/internal/designer"
	"cliffguard/internal/evalcache"
	"cliffguard/internal/obs"
	"cliffguard/internal/sample"
	"cliffguard/internal/workload"
)

// Portfolio races k member designers on the same workload and keeps the best
// design by worst-case cost — the RITA-style "race tuning strategies under a
// shared budget" idea, with a DBA-bandits-style safety rule: the kept design
// is never strictly worse than any member's on the scoring set.
//
// Members run concurrently under a bounded worker pool; each member is
// internally sequential, results land in a member-index-aligned slice, and
// every reduction walks that slice in index order, so the output design is
// bit-identical at any Parallelism. Scoring shares one evalcache across
// members keyed by design fingerprint: two members returning the same design
// are scored once (the single-pass worst-case discipline of the robust
// loop's incremental evaluator).
//
// The scoring set is {w} by default — worst case degenerates to the nominal
// cost, which is the right semantics when the portfolio runs inside the
// robust loop (the loop supplies its own Γ-neighborhood evaluation of the
// winner). Standalone callers can attach a Sampler and set Gamma/Samples to
// score members on a sampled Γ-neighborhood instead.
type Portfolio struct {
	// Members are the raced designers, in priority order: ties in worst-case
	// cost and fingerprint keep the earliest member.
	Members []designer.Designer
	// Cost is the what-if cost model used to score member designs.
	Cost designer.CostModel

	// Sampler, Gamma and Samples optionally widen the scoring set to a
	// sampled Γ-neighborhood of the input workload (plus the input itself).
	// With a nil Sampler or Gamma <= 0 the scoring set is {w}.
	Sampler *sample.Sampler
	Gamma   float64
	Samples int
	// Seed makes neighborhood sampling deterministic.
	Seed int64

	// Parallelism bounds the member-invocation and scoring worker pools
	// (0 or negative = runtime.NumCPU()). Results are bit-identical at any
	// value.
	Parallelism int
	// MemberTimeout bounds each member's Design call (0 = no bound). A
	// member exceeding it is skipped — counted, never fatal — while the
	// parent context's cancellation always aborts the whole portfolio.
	MemberTimeout time.Duration

	// Observer receives one obs.DesignerInvoked event per successful member,
	// emitted after the race in member-index order (deterministic). nil
	// disables emission.
	Observer obs.Observer
	// Metrics aggregates portfolio counters (runs, member errors/timeouts,
	// wins per member). nil disables metric updates.
	Metrics *obs.Metrics
}

// New returns a Portfolio over the given members with the default scoring
// set ({w}) and no member timeout.
func New(cost designer.CostModel, members ...designer.Designer) *Portfolio {
	return &Portfolio{Members: members, Cost: cost}
}

// Name implements designer.Designer.
func (p *Portfolio) Name() string { return "Portfolio" }

// errNoCostableWorkload marks a design whose every scoring workload had no
// costable query; such members are skipped like erroring ones.
var errNoCostableWorkload = errors.New("portfolio: no scoring workload is costable under the cost model")

// memberOut is one member's race outcome, index-aligned with Members.
type memberOut struct {
	d   *designer.Design
	err error
}

// Design implements designer.Designer: race the members, score each distinct
// returned design's worst case over the scoring set, keep the best.
func (p *Portfolio) Design(ctx context.Context, w *workload.Workload) (*designer.Design, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w == nil || w.Len() == 0 {
		return nil, errors.New("portfolio: empty workload")
	}
	if len(p.Members) == 0 {
		return nil, errors.New("portfolio: no member designers")
	}
	if p.Metrics != nil {
		p.Metrics.PortfolioRuns.Inc()
	}

	scoring, err := p.scoringSet(w)
	if err != nil {
		return nil, err
	}

	outs := p.race(ctx, w)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Gather in member-index order: emit per-member DesignerInvoked events,
	// score each distinct fingerprint once, and keep the winner. The winner
	// is the minimum worst-case cost; ties break to the lexicographically
	// smaller fingerprint (fixed-width hex, i.e. the smaller uint64), then
	// to the earlier member.
	iter := obs.IterationFromContext(ctx)
	units := evalcache.New()
	type score struct {
		cost float64
		err  error
	}
	scores := make(map[uint64]score)
	bestIdx := -1
	var bestCost float64
	var bestFP uint64
	var firstErr error
	for i, out := range outs {
		member := p.Members[i]
		if out.err != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if p.Metrics != nil {
				if errors.Is(out.err, context.DeadlineExceeded) {
					p.Metrics.PortfolioMemberTimeouts.Inc()
				} else {
					p.Metrics.PortfolioMemberErrors.Inc()
				}
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("member %s: %w", member.Name(), out.err)
			}
			continue
		}
		if p.Observer != nil {
			p.Observer.OnEvent(obs.DesignerInvoked{
				Iteration:  iter,
				Designer:   member.Name(),
				Queries:    w.Len(),
				Structures: out.d.Len(),
				SizeBytes:  out.d.SizeBytes(),
			})
		}
		fp := out.d.Fingerprint()
		sc, ok := scores[fp]
		if !ok {
			c, err := p.worstCase(ctx, scoring, out.d, units)
			sc = score{cost: c, err: err}
			scores[fp] = sc
		}
		if sc.err != nil {
			if !errors.Is(sc.err, errNoCostableWorkload) {
				return nil, sc.err
			}
			if p.Metrics != nil {
				p.Metrics.PortfolioMemberErrors.Inc()
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("member %s: %w", member.Name(), sc.err)
			}
			continue
		}
		if bestIdx < 0 || sc.cost < bestCost || (sc.cost == bestCost && fp < bestFP) {
			bestIdx, bestCost, bestFP = i, sc.cost, fp
		}
	}
	if bestIdx < 0 {
		if firstErr == nil {
			firstErr = errors.New("no member produced a design")
		}
		return nil, fmt.Errorf("portfolio: every member failed: %w", firstErr)
	}
	if p.Metrics != nil {
		p.Metrics.PortfolioWins.Inc(p.Members[bestIdx].Name())
	}
	return outs[bestIdx].d, nil
}

// scoringSet builds the workloads member designs are scored against.
func (p *Portfolio) scoringSet(w *workload.Workload) ([]*workload.Workload, error) {
	if p.Sampler == nil || p.Gamma <= 0 {
		return []*workload.Workload{w}, nil
	}
	samples := p.Samples
	if samples <= 0 {
		samples = 20
	}
	rng := rand.New(rand.NewSource(p.Seed))
	neighborhood, err := p.Sampler.Neighborhood(rng, w, p.Gamma, samples)
	if err != nil {
		return nil, fmt.Errorf("portfolio: sampling Γ-neighborhood: %w", err)
	}
	return append(neighborhood, w), nil
}

// race invokes every member concurrently under the bounded pool. Each
// member's Design call runs in a single goroutine under its own
// timeout-bounded child context; outputs are member-index-aligned.
func (p *Portfolio) race(ctx context.Context, w *workload.Workload) []memberOut {
	outs := make([]memberOut, len(p.Members))
	runOne := func(i int) {
		mctx := ctx
		cancel := context.CancelFunc(func() {})
		if p.MemberTimeout > 0 {
			mctx, cancel = context.WithTimeout(ctx, p.MemberTimeout)
		}
		d, err := p.Members[i].Design(mctx, w)
		cancel()
		if err == nil && d == nil {
			err = errors.New("designer returned a nil design")
		}
		outs[i] = memberOut{d: d, err: err}
	}
	workers := p.workers(len(p.Members))
	if workers == 1 {
		for i := range p.Members {
			runOne(i)
		}
		return outs
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range p.Members {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// worstCase scores one design: the maximum normalized workload cost over the
// scoring set, mirroring the robust loop's single-pass scorer. Workloads
// with no costable query are skipped; if every workload is uncostable the
// design is unscorable (errNoCostableWorkload). Per-workload costs are
// computed in one goroutine each (fixed summation order) and reduced in
// index order, so the score is bit-identical at any parallelism.
func (p *Portfolio) worstCase(ctx context.Context, scoring []*workload.Workload, d *designer.Design, units *evalcache.Cache) (float64, error) {
	fp := d.Fingerprint()
	type res struct {
		cost float64
		err  error
	}
	results := make([]res, len(scoring))
	evalOne := func(i int) {
		c, err := p.workloadCost(ctx, scoring[i], d, units, fp)
		results[i] = res{cost: c, err: err}
	}
	workers := p.workers(len(scoring))
	if workers == 1 {
		for i := range scoring {
			evalOne(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					evalOne(i)
				}
			}()
		}
		for i := range scoring {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	worst := math.Inf(-1)
	costable := false
	for _, r := range results {
		if r.err != nil {
			if errors.Is(r.err, errNoCostableWorkload) {
				continue
			}
			return 0, r.err
		}
		costable = true
		if r.cost > worst {
			worst = r.cost
		}
	}
	if !costable {
		return 0, errNoCostableWorkload
	}
	return worst, nil
}

// workloadCost evaluates f(W, D) normalized by costable weight, memoizing
// unit costs in the shared cache — the same semantics as the robust loop's
// evaluator: unsupported queries are skipped, a workload with no costable
// query yields errNoCostableWorkload, hard errors propagate uncached.
func (p *Portfolio) workloadCost(ctx context.Context, w *workload.Workload, d *designer.Design, units *evalcache.Cache, fp uint64) (float64, error) {
	var total, weight float64
	for _, it := range w.Items {
		if c, unsupported, ok := units.Lookup(it.Q, fp); ok {
			if !unsupported {
				total += it.Weight * c
				weight += it.Weight
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		c, err := p.Cost.Cost(ctx, it.Q, d)
		if err != nil {
			if errors.Is(err, designer.ErrUnsupported) {
				units.Store(it.Q, fp, 0, true)
				continue
			}
			return 0, err
		}
		units.Store(it.Q, fp, c, false)
		total += it.Weight * c
		weight += it.Weight
	}
	if weight == 0 {
		return 0, errNoCostableWorkload
	}
	return total / weight, nil
}

// workers resolves Parallelism to a pool size for n tasks.
func (p *Portfolio) workers(n int) int {
	par := p.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return par
}
