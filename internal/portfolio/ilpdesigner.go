package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"cliffguard/internal/designer"
	"cliffguard/internal/ilp"
	"cliffguard/internal/workload"
)

// ILPDesigner lowers any (engine, workload, budget) instance to an
// ilp.Problem through the what-if cost model and solves it with the exact
// branch-and-bound solver. When the node budget holds the returned design is
// provably optimal over the candidate pool (Result.Exact); when it does not,
// the solver's greedy incumbent — a benefit-per-byte greedy completion —
// is returned with Exact=false.
//
// The candidate pool comes from the engine's nominal designer, so "optimal"
// means optimal structure selection, not optimal structure generation; the
// optimality-oracle tests exploit exactly this to pin the greedy designers
// against a measurable optimum.
type ILPDesigner struct {
	// Cost is the engine's what-if cost model.
	Cost designer.CostModel
	// Provider generates the candidate pool.
	Provider CandidateProvider
	// Budget is the storage budget in bytes.
	Budget int64
	// MaxNodes caps branch-and-bound nodes (default 200k, ilp.Solve's
	// default). Exceeding it degrades to the greedy incumbent, Exact=false.
	MaxNodes int
	// MaxCandidates caps the pool fed to the solver (default 64): the
	// highest total-weighted-benefit-per-byte candidates survive,
	// deterministic ties by pool order. Branch-and-bound is exponential in
	// the pool in the worst case; the cap keeps design time bounded on
	// template-rich workloads. Set negative for no cap.
	MaxCandidates int
}

// NewILPDesigner returns an ILP-exact designer with default knobs.
func NewILPDesigner(cost designer.CostModel, provider CandidateProvider, budget int64) *ILPDesigner {
	return &ILPDesigner{Cost: cost, Provider: provider, Budget: budget}
}

// Result is DesignExact's output: the design plus the solver's optimality
// proof status.
type Result struct {
	Design *designer.Design
	// Exact reports that the design is provably optimal over the candidate
	// pool; false means the node budget was exceeded and the design is the
	// solver's greedy completion.
	Exact bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Name implements designer.Designer.
func (d *ILPDesigner) Name() string { return "ILP" }

// Design implements designer.Designer, discarding the exactness certificate.
func (d *ILPDesigner) Design(ctx context.Context, w *workload.Workload) (*designer.Design, error) {
	r, err := d.DesignExact(ctx, w)
	if err != nil {
		return nil, err
	}
	return r.Design, nil
}

func (d *ILPDesigner) maxCandidates() int {
	if d.MaxCandidates == 0 {
		return 64
	}
	return d.MaxCandidates
}

// DesignExact lowers the instance to an ilp.Problem and solves it, surfacing
// whether the solution is provably optimal.
func (d *ILPDesigner) DesignExact(ctx context.Context, w *workload.Workload) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w == nil || w.Len() == 0 {
		return nil, errors.New("portfolio: ILP: empty workload")
	}
	cw := designer.CompressByTemplate(w)
	pool := dedupe(d.Provider.Candidates(cw))
	if len(pool) == 0 {
		return &Result{Design: designer.NewDesign(), Exact: true}, nil
	}

	// Base costs; unsupported queries drop out of the objective (they cost
	// the same under every design).
	var queries []*workload.Query
	var weights []float64
	var base []float64
	for _, it := range cw.Items {
		c, err := d.Cost.Cost(ctx, it.Q, nil)
		if err != nil {
			if errors.Is(err, designer.ErrUnsupported) {
				continue
			}
			return nil, fmt.Errorf("portfolio: ILP: costing %s: %w", it.Q, err)
		}
		queries = append(queries, it.Q)
		weights = append(weights, it.Weight)
		base = append(base, c)
	}
	if len(queries) == 0 {
		return &Result{Design: designer.NewDesign(), Exact: true}, nil
	}

	// Per-(query, structure) what-if costs; +Inf marks inapplicable pairs.
	pair := make([][]float64, len(pool))
	for si, s := range pool {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, len(queries))
		sd := designer.NewDesign(s)
		for qi, q := range queries {
			c, err := d.Cost.Cost(ctx, q, sd)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				row[qi] = math.Inf(1)
				continue
			}
			row[qi] = c
		}
		pair[si] = row
	}

	keep := d.capPool(pool, pair, base, weights)

	prob := &ilp.Problem{
		Weights: weights,
		Base:    base,
		Cost:    make([][]float64, len(queries)),
		Size:    make([]int64, len(keep)),
		Budget:  d.Budget,
	}
	for ki, si := range keep {
		prob.Size[ki] = pool[si].SizeBytes()
	}
	for qi := range queries {
		row := make([]float64, len(keep))
		for ki, si := range keep {
			row[ki] = pair[si][qi]
		}
		prob.Cost[qi] = row
	}
	sol, err := ilp.Solve(prob, d.MaxNodes)
	if err != nil {
		return nil, fmt.Errorf("portfolio: ILP: %w", err)
	}
	chosen := make([]designer.Structure, 0, len(sol.Chosen))
	for _, ki := range sol.Chosen {
		chosen = append(chosen, pool[keep[ki]])
	}
	return &Result{
		Design: designer.NewDesign(chosen...),
		Exact:  sol.Exact,
		Nodes:  sol.Nodes,
	}, nil
}

// capPool returns the (sorted ascending) pool indices fed to the solver:
// all of them when the pool fits MaxCandidates, otherwise the top
// total-weighted-benefit-per-byte slice. Ties keep the earlier candidate.
func (d *ILPDesigner) capPool(pool []designer.Structure, pair [][]float64, base, weights []float64) []int {
	keep := make([]int, len(pool))
	for i := range keep {
		keep[i] = i
	}
	maxCand := d.maxCandidates()
	if maxCand < 0 || len(keep) <= maxCand {
		return keep
	}
	total := make([]float64, len(pool))
	for si := range pool {
		for qi := range base {
			if b := base[qi] - pair[si][qi]; b > 0 {
				total[si] += weights[qi] * b
			}
		}
		total[si] /= float64(maxI64(pool[si].SizeBytes(), 1))
	}
	sort.SliceStable(keep, func(i, j int) bool { return total[keep[i]] > total[keep[j]] })
	keep = keep[:maxCand]
	sort.Ints(keep)
	return keep
}
