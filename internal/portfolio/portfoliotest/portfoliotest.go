// Package portfoliotest provides an optimality oracle for small
// structure-selection instances: it enumerates every feasible subset of a
// bounded candidate pool with the real what-if cost model, so tests can
// measure exactly how far a designer lands from the true optimum over that
// pool, and cross-check the ILP solver's Exact certificate against brute
// force. Enumeration is exponential in the pool, hence the MaxPool bound.
package portfoliotest

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cliffguard/internal/designer"
	"cliffguard/internal/ilp"
	"cliffguard/internal/workload"
)

// MaxPool bounds the candidate pool Enumerate accepts (2^12 = 4096 subsets,
// each a full workload evaluation).
const MaxPool = 12

// Instance is one small oracle instance: a workload, a fixed candidate pool,
// a storage budget, and the engine's cost model. The pool is the whole
// universe — "optimal" below always means optimal subset of Pool.
type Instance struct {
	Cost   designer.CostModel
	W      *workload.Workload
	Pool   []designer.Structure
	Budget int64
}

// FixedProvider adapts a fixed pool to the CandidateProvider contract, so
// the pruning and ILP designers can be pinned to exactly the oracle's
// universe.
type FixedProvider []designer.Structure

// Candidates returns the fixed pool regardless of the workload.
func (p FixedProvider) Candidates(*workload.Workload) []designer.Structure {
	return []designer.Structure(p)
}

// Optimum is Enumerate's result.
type Optimum struct {
	// Cost is the total weighted workload cost of the best feasible subset.
	Cost float64
	// Subset holds the pool indices (ascending) of the optimal subset; ties
	// keep the first subset in ascending bitmask order, so the result is
	// deterministic.
	Subset []int
	// Feasible counts the budget-feasible subsets enumerated.
	Feasible int
}

// Enumerate evaluates every budget-feasible subset of the pool with the real
// cost model and returns the optimum. This is the ground truth the designers
// are measured against; unlike the ILP surrogate it sees structure
// interactions, because each subset is costed as one whole design.
func (in *Instance) Enumerate(ctx context.Context) (*Optimum, error) {
	n := len(in.Pool)
	if n > MaxPool {
		return nil, fmt.Errorf("portfoliotest: pool of %d exceeds MaxPool %d", n, MaxPool)
	}
	opt := &Optimum{Cost: math.Inf(1)}
	for mask := 0; mask < 1<<n; mask++ {
		var size int64
		var subset []designer.Structure
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += in.Pool[i].SizeBytes()
				subset = append(subset, in.Pool[i])
			}
		}
		if size > in.Budget {
			continue
		}
		opt.Feasible++
		cost, err := in.Evaluate(ctx, designer.NewDesign(subset...))
		if err != nil {
			return nil, err
		}
		if cost < opt.Cost {
			opt.Cost = cost
			opt.Subset = opt.Subset[:0]
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					opt.Subset = append(opt.Subset, i)
				}
			}
		}
	}
	if math.IsInf(opt.Cost, 1) {
		return nil, errors.New("portfoliotest: no feasible subset (is the budget negative?)")
	}
	return opt, nil
}

// Evaluate scores a design on the instance workload: total weighted cost,
// skipping queries the cost model does not support (they cost the same under
// every design, so skipping keeps ratios meaningful). This is the metric
// Enumerate optimizes, so Evaluate(design)/Optimum.Cost is a well-defined
// optimality ratio.
func (in *Instance) Evaluate(ctx context.Context, d *designer.Design) (float64, error) {
	var total float64
	for _, it := range in.W.Items {
		c, err := in.Cost.Cost(ctx, it.Q, d)
		if err != nil {
			if errors.Is(err, designer.ErrUnsupported) {
				continue
			}
			return 0, err
		}
		total += it.Weight * c
	}
	return total, nil
}

// Problem lowers the instance to the surrogate ilp.Problem the same way
// ILPDesigner does: Base from the no-design cost, Cost[q][s] from singleton
// what-if calls, +Inf for inapplicable pairs, unsupported queries dropped.
func (in *Instance) Problem(ctx context.Context) (*ilp.Problem, error) {
	var weights, base []float64
	var queries []*workload.Query
	for _, it := range in.W.Items {
		c, err := in.Cost.Cost(ctx, it.Q, nil)
		if err != nil {
			if errors.Is(err, designer.ErrUnsupported) {
				continue
			}
			return nil, err
		}
		queries = append(queries, it.Q)
		weights = append(weights, it.Weight)
		base = append(base, c)
	}
	p := &ilp.Problem{
		Weights: weights,
		Base:    base,
		Cost:    make([][]float64, len(queries)),
		Size:    make([]int64, len(in.Pool)),
		Budget:  in.Budget,
	}
	for qi := range queries {
		p.Cost[qi] = make([]float64, len(in.Pool))
	}
	for si, s := range in.Pool {
		p.Size[si] = s.SizeBytes()
		sd := designer.NewDesign(s)
		for qi, q := range queries {
			c, err := in.Cost.Cost(ctx, q, sd)
			if err != nil {
				p.Cost[qi][si] = math.Inf(1)
				continue
			}
			p.Cost[qi][si] = c
		}
	}
	return p, nil
}

// BruteForceObjective computes the surrogate problem's true optimum by
// enumerating every feasible subset under the problem's own objective
// (each query takes its cheapest chosen structure or the base path). It is
// the independent witness for ilp.Solve's Exact certificate.
func BruteForceObjective(p *ilp.Problem) (float64, error) {
	n := len(p.Size)
	if n > MaxPool {
		return 0, fmt.Errorf("portfoliotest: problem with %d structures exceeds MaxPool %d", n, MaxPool)
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		var size int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				size += p.Size[i]
			}
		}
		if size > p.Budget {
			continue
		}
		var obj float64
		for q := range p.Weights {
			c := p.Base[q]
			for s := 0; s < n; s++ {
				if mask&(1<<s) != 0 && p.Cost[q][s] < c {
					c = p.Cost[q][s]
				}
			}
			obj += p.Weights[q] * c
		}
		if obj < best {
			best = obj
		}
	}
	if math.IsInf(best, 1) {
		return 0, errors.New("portfoliotest: no feasible subset")
	}
	return best, nil
}
