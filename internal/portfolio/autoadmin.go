// Package portfolio implements designer diversity for the robust loop:
// an AutoAdmin-style candidate-pruning greedy designer, an ILP-exact
// designer lowering structure selection to the branch-and-bound solver, and
// a Portfolio runner that races member designers concurrently and keeps the
// best worst-case design.
//
// CliffGuard treats the nominal designer as a black box (Section 3 of the
// paper), so diversity in that slot is free robustness: the robust loop
// cannot do worse by being offered more candidate designs, and the portfolio
// enforces a deterministic "never deploy a strictly worse design" selection
// rule. All three designers implement designer.Designer and are bit-identical
// at any parallelism.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

// CandidateProvider is implemented by the engines' nominal designers: it
// exposes the candidate structure pool a workload induces. (Structurally
// identical to baselines.CandidateProvider; redeclared here to keep the
// package free of a baselines dependency.)
type CandidateProvider interface {
	Candidates(w *workload.Workload) []designer.Structure
}

// AutoAdmin is a candidate-pruning greedy designer in the classic
// Chaudhuri/Narasayya AutoAdmin shape: select the best few candidates per
// query in isolation, union them into a pruned pool, then run a bounded
// (k, m)-style greedy — an exhaustive seed over all subsets of size at most
// SeedSize, completed greedily by benefit per byte — within the storage
// budget.
//
// Compared to the engines' native greedy designers it prunes harder (only
// structures that are near-best for at least one query survive to selection)
// and its exhaustive seed escapes the first-pick local optima pure greedy
// falls into; the optimality-oracle tests measure both against the ILP
// optimum.
type AutoAdmin struct {
	// Cost is the engine's what-if cost model.
	Cost designer.CostModel
	// Provider generates the raw candidate pool (the engine's nominal
	// designer).
	Provider CandidateProvider
	// Budget is the storage budget in bytes.
	Budget int64
	// PerQuery is m: how many best candidates each query keeps in the
	// pruning pass (default 3).
	PerQuery int
	// SeedSize is k: the exhaustive-seed subset size of the greedy merge
	// (default 2). Raising it trades design time for quality.
	SeedSize int
	// MaxPool bounds the pruned union pool (default 64); the exhaustive seed
	// is quadratic in it at the default SeedSize.
	MaxPool int
}

// NewAutoAdmin returns an AutoAdmin designer with default knobs.
func NewAutoAdmin(cost designer.CostModel, provider CandidateProvider, budget int64) *AutoAdmin {
	return &AutoAdmin{Cost: cost, Provider: provider, Budget: budget}
}

// Name implements designer.Designer.
func (a *AutoAdmin) Name() string { return "AutoAdmin" }

func (a *AutoAdmin) perQuery() int {
	if a.PerQuery > 0 {
		return a.PerQuery
	}
	return 3
}

func (a *AutoAdmin) seedSize() int {
	if a.SeedSize > 0 {
		return a.SeedSize
	}
	return 2
}

func (a *AutoAdmin) maxPool() int {
	if a.MaxPool > 0 {
		return a.MaxPool
	}
	return 64
}

// Design implements designer.Designer.
func (a *AutoAdmin) Design(ctx context.Context, w *workload.Workload) (*designer.Design, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w == nil || w.Len() == 0 {
		return nil, errors.New("portfolio: AutoAdmin: empty workload")
	}
	cw := designer.CompressByTemplate(w)
	pool := dedupe(a.Provider.Candidates(cw))
	if len(pool) == 0 {
		return designer.NewDesign(), nil
	}

	// Cost tables: base[q] and pair[s][q] (cost of query q with structure s
	// alone). Queries outside the cost model's supported subset are dropped;
	// per-(query, structure) errors mark the pair inapplicable (+Inf), the
	// same convention as the ILP lowering.
	var queries []*workload.Query
	var weights []float64
	var base []float64
	for _, it := range cw.Items {
		c, err := a.Cost.Cost(ctx, it.Q, nil)
		if err != nil {
			if errors.Is(err, designer.ErrUnsupported) {
				continue
			}
			return nil, fmt.Errorf("portfolio: AutoAdmin: costing %s: %w", it.Q, err)
		}
		queries = append(queries, it.Q)
		weights = append(weights, it.Weight)
		base = append(base, c)
	}
	if len(queries) == 0 {
		return designer.NewDesign(), nil
	}
	pair := make([][]float64, len(pool))
	for si, s := range pool {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, len(queries))
		d := designer.NewDesign(s)
		for qi, q := range queries {
			c, err := a.Cost.Cost(ctx, q, d)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				row[qi] = math.Inf(1) // pair inapplicable; same convention as the ILP lowering
				continue
			}
			row[qi] = c
		}
		pair[si] = row
	}

	pruned := a.pruneCandidates(pool, pair, base, weights)
	return a.greedyKM(ctx, pool, pruned, pair, base, weights)
}

// pruneCandidates is the AutoAdmin per-query candidate selection: each query
// keeps its PerQuery best structures by standalone benefit, and the pruned
// pool is their union in original candidate order (deterministic: benefit
// ties keep the earlier candidate). If the union still exceeds MaxPool, the
// structures with the highest total weighted benefit per byte survive.
func (a *AutoAdmin) pruneCandidates(pool []designer.Structure, pair [][]float64, base, weights []float64) []int {
	m := a.perQuery()
	keep := make([]bool, len(pool))
	type scored struct {
		si      int
		benefit float64
	}
	for qi := range base {
		var best []scored
		for si := range pool {
			if b := base[qi] - pair[si][qi]; b > 0 {
				best = append(best, scored{si, b})
			}
		}
		sort.SliceStable(best, func(i, j int) bool { return best[i].benefit > best[j].benefit })
		if len(best) > m {
			best = best[:m]
		}
		for _, s := range best {
			keep[s.si] = true
		}
	}
	var pruned []int
	for si := range pool {
		if keep[si] {
			pruned = append(pruned, si)
		}
	}
	if maxPool := a.maxPool(); len(pruned) > maxPool {
		total := make([]float64, len(pool))
		for _, si := range pruned {
			for qi := range base {
				if b := base[qi] - pair[si][qi]; b > 0 {
					total[si] += weights[qi] * b
				}
			}
			total[si] /= float64(maxI64(pool[si].SizeBytes(), 1))
		}
		sort.SliceStable(pruned, func(i, j int) bool { return total[pruned[i]] > total[pruned[j]] })
		pruned = pruned[:maxPool]
		sort.Ints(pruned)
	}
	return pruned
}

// greedyKM runs the bounded (k, m)-greedy merge over the pruned pool: an
// every feasible subset of size at most SeedSize is taken as a seed
// (including the empty one), each seed is completed greedily by benefit per
// byte, and the best completed configuration by exact objective
// (min-composition over the pair table) wins. Completing every seed — not
// just the best-scoring one — is what lets the merge escape size-blind
// seeds: a seed with a great raw objective can eat the budget and strand
// the completion. Seeds are enumerated in lexicographic index order and
// improvements are strict, so ties always keep the earliest configuration —
// deterministic by construction.
func (a *AutoAdmin) greedyKM(ctx context.Context, pool []designer.Structure, pruned []int, pair [][]float64, base, weights []float64) (*designer.Design, error) {
	nq := len(base)

	objective := func(cur []float64) float64 {
		var total float64
		for qi := 0; qi < nq; qi++ {
			total += weights[qi] * cur[qi]
		}
		return total
	}
	minInto := func(cur []float64, si int) {
		for qi := 0; qi < nq; qi++ {
			if c := pair[si][qi]; c < cur[qi] {
				cur[qi] = c
			}
		}
	}

	// complete greedily extends a seed state by benefit per byte until the
	// budget or the gains run out, returning the final objective and the
	// seed's full configuration. Benefit ties keep the earliest pruned index.
	complete := func(seed []int, cur []float64, used int64) (float64, []int) {
		sel := append([]int(nil), seed...)
		taken := make(map[int]bool, len(pruned))
		for _, si := range seed {
			taken[si] = true
		}
		for {
			bestIdx := -1
			bestScore := 0.0
			for _, si := range pruned {
				if taken[si] {
					continue
				}
				sz := poolSize(pool, si)
				if used+sz > a.Budget {
					continue
				}
				var gain float64
				for qi := 0; qi < nq; qi++ {
					if c := pair[si][qi]; c < cur[qi] {
						gain += weights[qi] * (cur[qi] - c)
					}
				}
				if gain <= 0 {
					continue
				}
				score := gain / float64(maxI64(sz, 1))
				if bestIdx < 0 || score > bestScore {
					bestIdx, bestScore = si, score
				}
			}
			if bestIdx < 0 {
				break
			}
			taken[bestIdx] = true
			minInto(cur, bestIdx)
			used += poolSize(pool, bestIdx)
			sel = append(sel, bestIdx)
		}
		return objective(cur), sel
	}

	var bestSel []int
	bestObj := math.Inf(1)
	var rec func(start int, chosen []int, used int64, cur []float64) error
	rec = func(start int, chosen []int, used int64, cur []float64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if obj, sel := complete(chosen, append([]float64(nil), cur...), used); obj < bestObj {
			bestObj = obj
			bestSel = sel
		}
		if len(chosen) >= a.seedSize() {
			return nil
		}
		for i := start; i < len(pruned); i++ {
			si := pruned[i]
			sz := poolSize(pool, si)
			if used+sz > a.Budget {
				continue
			}
			next := make([]float64, nq)
			copy(next, cur)
			minInto(next, si)
			if err := rec(i+1, append(chosen, si), used+sz, next); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil, 0, append([]float64(nil), base...)); err != nil {
		return nil, err
	}

	design := designer.NewDesign()
	for _, si := range bestSel {
		design = design.With(pool[si])
	}
	return design, nil
}

func poolSize(pool []designer.Structure, si int) int64 { return pool[si].SizeBytes() }

// dedupe drops nil and duplicate-key structures, keeping first occurrences.
func dedupe(in []designer.Structure) []designer.Structure {
	seen := make(map[string]bool, len(in))
	var out []designer.Structure
	for _, s := range in {
		if s == nil || seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		out = append(out, s)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
