package portfolio

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"cliffguard/internal/designer"
	"cliffguard/internal/obs"
	"cliffguard/internal/workload"
)

// stub fixtures --------------------------------------------------------------

type stubStructure struct {
	key  string
	size int64
}

func (s stubStructure) Key() string      { return s.key }
func (s stubStructure) SizeBytes() int64 { return s.size }
func (s stubStructure) Describe() string { return "stub " + s.key }

// stubCost is a deterministic toy model: every structure whose key starts
// with "good" shaves 10 off a base cost of 100; a design containing a
// "poison" structure makes every query unsupported.
type stubCost struct{}

func (stubCost) Cost(_ context.Context, _ *workload.Query, d *designer.Design) (float64, error) {
	cost := 100.0
	if d != nil {
		for _, s := range d.Structures {
			if strings.HasPrefix(s.Key(), "poison") {
				return 0, designer.ErrUnsupported
			}
			if strings.HasPrefix(s.Key(), "good") {
				cost -= 10
			}
		}
	}
	return cost, nil
}

// fixedDesigner returns a canned design, error, or blocks until its context
// is cancelled.
type fixedDesigner struct {
	name  string
	d     *designer.Design
	err   error
	block bool
}

func (f *fixedDesigner) Name() string { return f.name }

func (f *fixedDesigner) Design(ctx context.Context, _ *workload.Workload) (*designer.Design, error) {
	if f.block {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if f.err != nil {
		return nil, f.err
	}
	return f.d, nil
}

func stubWorkload() *workload.Workload {
	return workload.New(
		oq(&workload.Spec{Table: "f", SelectCols: []int{0}}),
		oq(&workload.Spec{Table: "f", SelectCols: []int{1}}),
	)
}

func design(keys ...string) *designer.Design {
	var ss []designer.Structure
	for _, k := range keys {
		ss = append(ss, stubStructure{key: k, size: 1 << 20})
	}
	return designer.NewDesign(ss...)
}

// tests ----------------------------------------------------------------------

// TestPortfolioDeterminismAcrossParallelism runs the same degraded race —
// a winner, a weaker member, a duplicate of the winner, an erroring member,
// and a member that sleeps past its timeout — at parallelism 1 and NumCPU,
// and requires bit-identical designs, event streams, and win counters.
// `make race` runs this under the race detector, which makes it the
// portfolio's concurrency gate too.
func TestPortfolioDeterminismAcrossParallelism(t *testing.T) {
	w := stubWorkload()
	run := func(par int) (*designer.Design, []obs.Event, map[string]uint64, error) {
		rec := &obs.Recorder{}
		met := obs.NewMetrics()
		p := New(stubCost{},
			&fixedDesigner{name: "weak", d: design("good-a")},
			&fixedDesigner{name: "erroring", err: errors.New("boom")},
			&fixedDesigner{name: "strong", d: design("good-a", "good-b")},
			&fixedDesigner{name: "hanging", block: true},
			&fixedDesigner{name: "copycat", d: design("good-b", "good-a")},
		)
		p.Parallelism = par
		p.MemberTimeout = 20 * time.Millisecond
		p.Observer = rec
		p.Metrics = met
		d, err := p.Design(context.Background(), w)
		return d, rec.Events(), met.PortfolioWins.Snapshot(), err
	}
	for trial := 0; trial < 5; trial++ {
		d1, ev1, wins1, err1 := run(1)
		dN, evN, winsN, errN := run(runtime.NumCPU())
		if err1 != nil || errN != nil {
			t.Fatalf("trial %d: err1=%v errN=%v", trial, err1, errN)
		}
		if d1.Fingerprint() != dN.Fingerprint() || d1.String() != dN.String() {
			t.Fatalf("trial %d: designs differ across parallelism:\n p=1: %s\n p=N: %s", trial, d1, dN)
		}
		if d1.Len() != 2 {
			t.Fatalf("trial %d: wrong winner design: %s", trial, d1)
		}
		if !reflect.DeepEqual(ev1, evN) {
			t.Fatalf("trial %d: event streams differ:\n p=1: %v\n p=N: %v", trial, ev1, evN)
		}
		if !reflect.DeepEqual(wins1, winsN) {
			t.Fatalf("trial %d: win counters differ: %v vs %v", trial, wins1, winsN)
		}
		// "strong" and "copycat" share the winning fingerprint; the earlier
		// member must take the win.
		if wins1["strong"] != 1 {
			t.Fatalf("trial %d: wins = %v, want strong=1", trial, wins1)
		}
	}
}

// TestPortfolioEventOrder pins the observable contract: one DesignerInvoked
// event per successful member, emitted in member-index order regardless of
// completion order.
func TestPortfolioEventOrder(t *testing.T) {
	rec := &obs.Recorder{}
	p := New(stubCost{},
		&fixedDesigner{name: "m0", d: design("good-a")},
		&fixedDesigner{name: "m1", d: design("good-b")},
		&fixedDesigner{name: "m2", d: design("good-c")},
	)
	p.Observer = rec
	if _, err := p.Design(context.Background(), stubWorkload()); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range rec.Events() {
		di, ok := ev.(obs.DesignerInvoked)
		if !ok {
			t.Fatalf("unexpected event %T", ev)
		}
		names = append(names, di.Designer)
	}
	if want := []string{"m0", "m1", "m2"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("event order %v, want %v", names, want)
	}
}

// TestPortfolioMemberTimeout: a hanging member is skipped after
// MemberTimeout, counted, and never deadlocks the race.
func TestPortfolioMemberTimeout(t *testing.T) {
	met := obs.NewMetrics()
	p := New(stubCost{},
		&fixedDesigner{name: "hanging", block: true},
		&fixedDesigner{name: "ok", d: design("good-a")},
	)
	p.MemberTimeout = 10 * time.Millisecond
	p.Metrics = met
	done := make(chan struct{})
	var d *designer.Design
	var err error
	go func() { d, err = p.Design(context.Background(), stubWorkload()); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("portfolio deadlocked on a hanging member")
	}
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("wrong design: %s", d)
	}
	if got := met.PortfolioMemberTimeouts.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	if got := met.PortfolioWins.Load("ok"); got != 1 {
		t.Fatalf("wins[ok] = %d, want 1", got)
	}
}

// TestPortfolioErrorMember: a failing member is counted and skipped.
func TestPortfolioErrorMember(t *testing.T) {
	met := obs.NewMetrics()
	p := New(stubCost{},
		&fixedDesigner{name: "bad", err: errors.New("boom")},
		&fixedDesigner{name: "ok", d: design("good-a")},
	)
	p.Metrics = met
	d, err := p.Design(context.Background(), stubWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("wrong design: %s", d)
	}
	if got := met.PortfolioMemberErrors.Load(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}
}

// TestPortfolioUnscorableMember: a member whose design cannot be costed on
// any scoring workload is skipped like an erroring one.
func TestPortfolioUnscorableMember(t *testing.T) {
	met := obs.NewMetrics()
	p := New(stubCost{},
		&fixedDesigner{name: "poisoned", d: design("poison-x")},
		&fixedDesigner{name: "ok", d: design("good-a")},
	)
	p.Metrics = met
	d, err := p.Design(context.Background(), stubWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Structures[0].Key() != "good-a" {
		t.Fatalf("wrong design: %s", d)
	}
	if got := met.PortfolioMemberErrors.Load(); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}
}

// TestPortfolioAllMembersFail: the first member error surfaces, wrapped.
func TestPortfolioAllMembersFail(t *testing.T) {
	first := errors.New("first failure")
	p := New(stubCost{},
		&fixedDesigner{name: "bad0", err: first},
		&fixedDesigner{name: "bad1", err: errors.New("second failure")},
	)
	_, err := p.Design(context.Background(), stubWorkload())
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want wrapped %v", err, first)
	}
}

// TestPortfolioTieBreakFingerprint: equal worst-case costs resolve to the
// lexicographically smaller fingerprint, independent of member order.
func TestPortfolioTieBreakFingerprint(t *testing.T) {
	// Both designs cost the same under stubCost (one "good" structure each)
	// but have different fingerprints.
	dA, dB := design("good-a"), design("good-b")
	want := dA
	if dB.Fingerprint() < dA.Fingerprint() {
		want = dB
	}
	for _, order := range [][]*designer.Design{{dA, dB}, {dB, dA}} {
		p := New(stubCost{},
			&fixedDesigner{name: "m0", d: order[0]},
			&fixedDesigner{name: "m1", d: order[1]},
		)
		got, err := p.Design(context.Background(), stubWorkload())
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("order %s/%s: winner %s, want %s", order[0], order[1], got, want)
		}
	}
}

// TestPortfolioParentCancellation: cancelling the caller's context aborts
// the whole portfolio even while a member hangs (no MemberTimeout set).
func TestPortfolioParentCancellation(t *testing.T) {
	p := New(stubCost{},
		&fixedDesigner{name: "hanging", block: true},
		&fixedDesigner{name: "ok", d: design("good-a")},
	)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := p.Design(ctx, stubWorkload())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("portfolio did not observe parent cancellation")
	}
}

// TestPortfolioValidation covers the argument errors.
func TestPortfolioValidation(t *testing.T) {
	p := New(stubCost{})
	if _, err := p.Design(context.Background(), stubWorkload()); err == nil {
		t.Error("no members should fail")
	}
	p = New(stubCost{}, &fixedDesigner{name: "ok", d: design("good-a")})
	if _, err := p.Design(context.Background(), nil); err == nil {
		t.Error("nil workload should fail")
	}
	if _, err := p.Design(context.Background(), &workload.Workload{}); err == nil {
		t.Error("empty workload should fail")
	}
}

// TestPortfolioIterationTag: the DesignerInvoked events carry the iteration
// from the context (the robust loop's tag), defaulting to -1.
func TestPortfolioIterationTag(t *testing.T) {
	for _, iter := range []int{-1, 0, 7} {
		rec := &obs.Recorder{}
		p := New(stubCost{}, &fixedDesigner{name: "ok", d: design("good-a")})
		p.Observer = rec
		ctx := context.Background()
		if iter >= 0 {
			ctx = obs.ContextWithIteration(ctx, iter)
		}
		if _, err := p.Design(ctx, stubWorkload()); err != nil {
			t.Fatal(err)
		}
		evs := rec.Events()
		if len(evs) != 1 {
			t.Fatalf("got %d events, want 1", len(evs))
		}
		if got := evs[0].(obs.DesignerInvoked).Iteration; got != iter {
			t.Fatalf("iteration = %d, want %d", got, iter)
		}
	}
}

var _ fmt.Stringer = (*designer.Design)(nil) // Design.String is part of the determinism checks above
