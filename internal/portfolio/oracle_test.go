package portfolio

import (
	"context"
	"math"
	"testing"
	"time"

	"cliffguard/internal/aqesim"
	"cliffguard/internal/designer"
	"cliffguard/internal/ilp"
	"cliffguard/internal/portfolio/portfoliotest"
	"cliffguard/internal/rowsim"
	"cliffguard/internal/schema"
	"cliffguard/internal/vertsim"
	"cliffguard/internal/workload"
)

// Measured optimality bounds for the greedy designers on the oracle
// instances below. They are assertions, not theory: the exhaustive oracle
// measures the actual ratio every run, and these constants pin the measured
// quality so a regression in pruning or selection order fails loudly.
const (
	autoAdminMaxRatio = 1.01 // the (k, m)-merge attains the optimum on all three instances
	greedyMaxRatio    = 1.40 // pure greedy measures up to ~1.35 (aqesim); the seed merge is the fix
)

func oracleSchema() *schema.Schema {
	return schema.MustNew([]schema.TableDef{{
		Name: "f", Fact: true, Rows: 800_000,
		Columns: []schema.ColumnDef{
			{Name: "a", Type: schema.Int64, Cardinality: 1000},
			{Name: "b", Type: schema.Int64, Cardinality: 100},
			{Name: "c", Type: schema.Int64, Cardinality: 10},
			{Name: "d", Type: schema.Float64, Cardinality: 10_000},
			{Name: "e", Type: schema.Int64, Cardinality: 50},
		},
	}})
}

func oq(spec *workload.Spec) *workload.Query {
	return workload.FromSpec(workload.NextID(), time.Time{}, spec)
}

// scanQueries builds distinct-template scan/filter queries (vertsim, rowsim).
func scanQueries() []*workload.Query {
	return []*workload.Query{
		oq(&workload.Spec{Table: "f", SelectCols: []int{0, 3},
			Preds: []workload.Pred{{Col: 0, Op: workload.Eq, Lo: 7, Hi: 7, Sel: 0.001}}}),
		oq(&workload.Spec{Table: "f", SelectCols: []int{1, 3},
			Preds: []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 5, Hi: 5, Sel: 0.01}}}),
		oq(&workload.Spec{Table: "f", SelectCols: []int{2},
			GroupBy: []int{2},
			Aggs:    []workload.Agg{{Fn: workload.Count, Col: -1}, {Fn: workload.Sum, Col: 3}}}),
		oq(&workload.Spec{Table: "f", SelectCols: []int{4, 3},
			Preds: []workload.Pred{{Col: 4, Op: workload.Eq, Lo: 2, Hi: 2, Sel: 0.02}}}),
		oq(&workload.Spec{Table: "f", SelectCols: []int{0, 1},
			Preds: []workload.Pred{{Col: 1, Op: workload.Between, Lo: 1, Hi: 20, Sel: 0.2}}}),
	}
}

// aggQueries builds aggregate queries (aqesim designs samples only for
// aggregates).
func aggQueries() []*workload.Query {
	mk := func(group, pred int) *workload.Query {
		return oq(&workload.Spec{
			Table:      "f",
			SelectCols: []int{group},
			GroupBy:    []int{group},
			Aggs:       []workload.Agg{{Fn: workload.Count, Col: -1}, {Fn: workload.Sum, Col: 3}},
			Preds:      []workload.Pred{{Col: pred, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.05}},
		})
	}
	return []*workload.Query{mk(0, 2), mk(1, 2), mk(2, 4), mk(4, 2), mk(2, 0)}
}

// oracleInstance pins an engine to a <= MaxPool candidate universe with a
// budget tight enough that selection is non-trivial (about half the pool's
// total bytes).
func oracleInstance(cost designer.CostModel, provider CandidateProvider, queries []*workload.Query) *portfoliotest.Instance {
	w := designer.CompressByTemplate(workload.New(queries...))
	pool := dedupe(provider.Candidates(w))
	if len(pool) > portfoliotest.MaxPool {
		pool = pool[:portfoliotest.MaxPool]
	}
	var total int64
	for _, s := range pool {
		total += s.SizeBytes()
	}
	return &portfoliotest.Instance{Cost: cost, W: w, Pool: pool, Budget: total / 2}
}

// TestOptimalityOracle is the measured-optimality harness: for each engine,
// enumerate every feasible subset of a small candidate universe with the
// real cost model (the ground truth), then require that (1) ilp.Solve's
// Exact certificate matches an independent brute force of the surrogate
// objective, (2) ILPDesigner attains the enumerated optimum, and (3) the
// greedy designers land within the pinned measured ratios of it.
func TestOptimalityOracle(t *testing.T) {
	s := oracleSchema()
	cases := []struct {
		engine   string
		cost     designer.CostModel
		provider CandidateProvider
		queries  []*workload.Query
	}{
		{
			engine:   "vertsim",
			cost:     vertsim.Open(s),
			provider: vertsim.NewDesigner(vertsim.Open(s), 1<<62),
			queries:  scanQueries(),
		},
		{
			engine:   "rowsim",
			cost:     rowsim.Open(s),
			provider: rowsim.NewDesigner(rowsim.Open(s), 1<<62),
			queries:  scanQueries(),
		},
		{
			engine:   "aqesim",
			cost:     aqesim.Open(s),
			provider: aqesim.NewDesigner(aqesim.Open(s), 1<<62),
			queries:  aggQueries(),
		},
	}
	ctx := context.Background()
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			inst := oracleInstance(tc.cost, tc.provider, tc.queries)
			if len(inst.Pool) < 4 {
				t.Fatalf("pool too small for a meaningful oracle: %d candidates", len(inst.Pool))
			}
			opt, err := inst.Enumerate(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Feasible < 2 {
				t.Fatalf("budget admits only %d subsets; instance is degenerate", opt.Feasible)
			}
			t.Logf("%s: %d candidates, %d feasible subsets, optimum %.3f (subset %v)",
				tc.engine, len(inst.Pool), opt.Feasible, opt.Cost, opt.Subset)

			// (1) The ILP solver vs an independent brute force of its own
			// surrogate objective.
			prob, err := inst.Problem(ctx)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := ilp.Solve(prob, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Exact {
				t.Fatalf("ilp.Solve not exact on a %d-candidate instance (%d nodes)", len(inst.Pool), sol.Nodes)
			}
			brute, err := portfoliotest.BruteForceObjective(prob)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(sol.Objective, brute) {
				t.Fatalf("ilp objective %.9f != brute force %.9f", sol.Objective, brute)
			}

			// (2) ILPDesigner end to end: Exact certificate and the
			// enumerated (real-model) optimum.
			ilpd := &ILPDesigner{Cost: tc.cost, Provider: portfoliotest.FixedProvider(inst.Pool),
				Budget: inst.Budget, MaxCandidates: -1}
			res, err := ilpd.DesignExact(ctx, inst.W)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact {
				t.Fatalf("ILPDesigner not exact (%d nodes)", res.Nodes)
			}
			ilpCost, err := inst.Evaluate(ctx, res.Design)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(ilpCost, opt.Cost) {
				t.Fatalf("ILPDesigner design costs %.9f, enumerated optimum %.9f", ilpCost, opt.Cost)
			}

			// (3) The greedy designers within their pinned measured ratios.
			aa := &AutoAdmin{Cost: tc.cost, Provider: portfoliotest.FixedProvider(inst.Pool), Budget: inst.Budget}
			ad, err := aa.Design(ctx, inst.W)
			if err != nil {
				t.Fatal(err)
			}
			if ad.SizeBytes() > inst.Budget {
				t.Fatalf("AutoAdmin exceeded the budget: %d > %d", ad.SizeBytes(), inst.Budget)
			}
			aaCost, err := inst.Evaluate(ctx, ad)
			if err != nil {
				t.Fatal(err)
			}
			aaRatio := aaCost / opt.Cost
			t.Logf("AutoAdmin ratio %.4f", aaRatio)
			if aaRatio > autoAdminMaxRatio {
				t.Errorf("AutoAdmin ratio %.4f > %.2f", aaRatio, autoAdminMaxRatio)
			}

			gd, err := designer.GreedySelect(ctx, tc.cost, inst.W, inst.Pool, inst.Budget)
			if err != nil {
				t.Fatal(err)
			}
			gCost, err := inst.Evaluate(ctx, gd)
			if err != nil {
				t.Fatal(err)
			}
			gRatio := gCost / opt.Cost
			t.Logf("GreedySelect ratio %.4f", gRatio)
			if gRatio > greedyMaxRatio {
				t.Errorf("GreedySelect ratio %.4f > %.2f", gRatio, greedyMaxRatio)
			}
		})
	}
}

func approx(a, b float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= 1e-9*scale
}
