package designer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"cliffguard/internal/workload"
)

// fakeStructure is a minimal Structure for selection tests.
type fakeStructure struct {
	key  string
	size int64
}

func (f *fakeStructure) Key() string      { return f.key }
func (f *fakeStructure) SizeBytes() int64 { return f.size }
func (f *fakeStructure) Describe() string { return "FAKE " + f.key }

// tableCost is a CostModel where each structure serves a fixed set of query
// IDs at a fixed cost; everything else runs at base cost.
type tableCost struct {
	base   float64
	serves map[string]map[int64]float64 // structure key -> query ID -> cost
	fail   bool
}

func (tc *tableCost) Cost(_ context.Context, q *workload.Query, d *Design) (float64, error) {
	if tc.fail {
		return 0, errors.New("boom")
	}
	best := tc.base
	if d != nil {
		for _, s := range d.Structures {
			if c, ok := tc.serves[s.Key()][q.ID]; ok && c < best {
				best = c
			}
		}
	}
	return best, nil
}

func mkQuery(id int64, cols ...int) *workload.Query {
	q := workload.FromSpec(id, time.Time{}, &workload.Spec{Table: "t", SelectCols: cols})
	return q
}

func TestDesignBasics(t *testing.T) {
	a := &fakeStructure{"a", 10}
	b := &fakeStructure{"b", 20}
	d := NewDesign(a, b, a, nil) // duplicate + nil dropped
	if d.Len() != 2 || d.SizeBytes() != 30 {
		t.Fatalf("Len=%d Size=%d", d.Len(), d.SizeBytes())
	}
	keys := d.Keys()
	if !keys["a"] || !keys["b"] {
		t.Error("Keys missing entries")
	}
	d2 := d.With(&fakeStructure{"c", 5})
	if d2.Len() != 3 || d.Len() != 2 {
		t.Error("With should not mutate the receiver")
	}
	var nilDesign *Design
	if nilDesign.Len() != 0 || nilDesign.SizeBytes() != 0 {
		t.Error("nil design should be empty")
	}
	if !strings.Contains(d.String(), "FAKE a") {
		t.Error("String should describe structures")
	}
	if (&Design{}).String() != "Design{}" {
		t.Error("empty design String")
	}
}

func TestWorkloadCost(t *testing.T) {
	q1, q2 := mkQuery(1, 0), mkQuery(2, 1)
	w := &workload.Workload{}
	w.Add(q1, 2)
	w.Add(q2, 3)
	tc := &tableCost{base: 10, serves: map[string]map[int64]float64{
		"a": {1: 1},
	}}
	got, err := WorkloadCost(context.Background(), tc, w, nil)
	if err != nil || got != 50 {
		t.Fatalf("WorkloadCost = %g, %v; want 50", got, err)
	}
	got, err = WorkloadCost(context.Background(), tc, w, NewDesign(&fakeStructure{"a", 1}))
	if err != nil || got != 32 { // 2*1 + 3*10
		t.Fatalf("WorkloadCost with design = %g, %v; want 32", got, err)
	}
	tc.fail = true
	if _, err := WorkloadCost(context.Background(), tc, w, nil); err == nil {
		t.Fatal("cost errors must propagate")
	}
}

func TestCompressByTemplate(t *testing.T) {
	// Two queries share a template; one differs.
	qa1, qa2 := mkQuery(1, 0, 1), mkQuery(2, 0, 1)
	qb := mkQuery(3, 2)
	w := &workload.Workload{}
	w.Add(qa1, 1)
	w.Add(qa2, 5) // heavier: becomes the representative
	w.Add(qb, 2)

	cw := CompressByTemplate(w)
	if cw.Len() != 2 {
		t.Fatalf("compressed to %d items, want 2", cw.Len())
	}
	var aItem *workload.Item
	for i := range cw.Items {
		if cw.Items[i].Q.Columns().Has(0) {
			aItem = &cw.Items[i]
		}
	}
	if aItem == nil || aItem.Weight != 6 {
		t.Fatalf("merged weight = %+v, want 6", aItem)
	}
	if aItem.Q != qa2 {
		t.Error("representative should be the heaviest instance")
	}
	if cw.TotalWeight() != w.TotalWeight() {
		t.Error("compression must preserve total weight")
	}
}

func TestGreedySelect(t *testing.T) {
	// Three queries; structures with different benefit/size profiles.
	q1, q2, q3 := mkQuery(1, 0), mkQuery(2, 1), mkQuery(3, 2)
	w := workload.New(q1, q2, q3)
	tc := &tableCost{base: 100, serves: map[string]map[int64]float64{
		"cheap-good": {1: 1},       // benefit 99, size 10  -> 9.9/byte
		"big-better": {1: 1, 2: 1}, // benefit 198, size 100 -> 1.98/byte
		"useless":    {},           // no benefit
		"third":      {3: 50},      // benefit 50, size 10
	}}
	cands := []Structure{
		&fakeStructure{"cheap-good", 10},
		&fakeStructure{"big-better", 100},
		&fakeStructure{"useless", 1},
		&fakeStructure{"third", 10},
	}

	// Ample budget: picks everything useful, skips useless.
	d, err := GreedySelect(context.Background(), tc, w, cands, 1000)
	if err != nil {
		t.Fatal(err)
	}
	keys := d.Keys()
	if !keys["cheap-good"] || !keys["third"] {
		t.Errorf("design = %v", keys)
	}
	if keys["useless"] {
		t.Error("useless structure selected")
	}

	// Tight budget: the best ratio wins first.
	d, err = GreedySelect(context.Background(), tc, w, cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !d.Keys()["cheap-good"] {
		t.Errorf("tight budget design = %v", d.Keys())
	}

	// Zero budget or no candidates: empty design.
	d, _ = GreedySelect(context.Background(), tc, w, cands, 0)
	if d.Len() != 0 {
		t.Error("zero budget should yield empty design")
	}
	d, _ = GreedySelect(context.Background(), tc, w, nil, 1000)
	if d.Len() != 0 {
		t.Error("no candidates should yield empty design")
	}
}

// TestGreedySelectMatchesExhaustive verifies the incremental greedy against
// a brute-force greedy on small random instances.
func TestGreedySelectMatchesExhaustive(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		nq, ns := 4, 5
		tc := &tableCost{base: 100, serves: map[string]map[int64]float64{}}
		var queries []*workload.Query
		for i := 0; i < nq; i++ {
			queries = append(queries, mkQuery(int64(i+1), i))
		}
		w := workload.New(queries...)
		var cands []Structure
		for s := 0; s < ns; s++ {
			key := fmt.Sprintf("s%d", s)
			serve := map[int64]float64{}
			for qi := 0; qi < nq; qi++ {
				if (trial+s*7+qi*3)%3 == 0 {
					serve[int64(qi+1)] = float64((trial*5 + s + qi) % 40)
				}
			}
			tc.serves[key] = serve
			cands = append(cands, &fakeStructure{key, int64(5 + (trial+s)%20)})
		}
		budget := int64(20 + trial%30)

		fast, err := GreedySelect(context.Background(), tc, w, cands, budget)
		if err != nil {
			t.Fatal(err)
		}
		slow := bruteGreedy(tc, w, cands, budget)
		fastCost, _ := WorkloadCost(context.Background(), tc, w, fast)
		slowCost, _ := WorkloadCost(context.Background(), tc, w, slow)
		if math.Abs(fastCost-slowCost) > 1e-9 {
			t.Fatalf("trial %d: incremental greedy %.3f != reference greedy %.3f",
				trial, fastCost, slowCost)
		}
		if fast.SizeBytes() > budget {
			t.Fatalf("trial %d: budget exceeded", trial)
		}
	}
}

// bruteGreedy is the straightforward O(picks * cands * full-recost) greedy.
func bruteGreedy(cm CostModel, w *workload.Workload, cands []Structure, budget int64) *Design {
	design := NewDesign()
	remaining := append([]Structure(nil), cands...)
	cur, _ := WorkloadCost(context.Background(), cm, w, design)
	used := int64(0)
	for len(remaining) > 0 {
		bestIdx, bestScore, bestCost := -1, 0.0, 0.0
		for i, cand := range remaining {
			if used+cand.SizeBytes() > budget {
				continue
			}
			c, _ := WorkloadCost(context.Background(), cm, w, design.With(cand))
			if benefit := cur - c; benefit > 0 {
				score := benefit / float64(cand.SizeBytes())
				if bestIdx < 0 || score > bestScore {
					bestIdx, bestScore, bestCost = i, score, c
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		design = design.With(remaining[bestIdx])
		used += remaining[bestIdx].SizeBytes()
		cur = bestCost
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return design
}

func TestGreedySelectPropagatesErrors(t *testing.T) {
	tc := &tableCost{base: 10, fail: true}
	w := workload.New(mkQuery(1, 0))
	if _, err := GreedySelect(context.Background(), tc, w, []Structure{&fakeStructure{"a", 1}}, 100); err == nil {
		t.Fatal("cost errors must propagate")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := &fakeStructure{"a", 10}
	b := &fakeStructure{"b", 20}
	c := &fakeStructure{"c", 30}
	d1 := NewDesign(a, b, c)
	d2 := NewDesign(c, a, b)
	if d1.Fingerprint() != d2.Fingerprint() {
		t.Fatalf("fingerprint depends on structure order: %x vs %x", d1.Fingerprint(), d2.Fingerprint())
	}
}

func TestFingerprintDuplicationInvariant(t *testing.T) {
	a := &fakeStructure{"a", 10}
	b := &fakeStructure{"b", 20}
	base := NewDesign(a, b)
	// With appends without deduplicating; the fingerprint hashes the key SET,
	// so a duplicated structure must not change it.
	dup := NewDesign(a, b).With(a)
	if base.Fingerprint() != dup.Fingerprint() {
		t.Fatalf("duplicate structure changed the fingerprint: %x vs %x",
			base.Fingerprint(), dup.Fingerprint())
	}
}

func TestFingerprintNilAndEmpty(t *testing.T) {
	var nilD *Design
	if nilD.Fingerprint() != NewDesign().Fingerprint() {
		t.Fatalf("nil and empty designs disagree: %x vs %x",
			nilD.Fingerprint(), NewDesign().Fingerprint())
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	a := &fakeStructure{"a", 10}
	seen := map[uint64]string{NewDesign().Fingerprint(): "empty"}
	cases := map[string]*Design{
		"a":        NewDesign(a),
		"b":        NewDesign(&fakeStructure{"b", 10}),
		"a+b":      NewDesign(a, &fakeStructure{"b", 20}),
		"a-resize": NewDesign(&fakeStructure{"a", 11}), // same key, different size
	}
	for name, d := range cases {
		fp := d.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("designs %q and %q collide on %x", name, prev, fp)
		}
		seen[fp] = name
	}
}

func TestFingerprintCached(t *testing.T) {
	d := NewDesign(&fakeStructure{"a", 10}, &fakeStructure{"b", 20})
	first := d.Fingerprint()
	for i := 0; i < 3; i++ {
		if got := d.Fingerprint(); got != first {
			t.Fatalf("fingerprint unstable across calls: %x vs %x", got, first)
		}
	}
}
