// Package designer defines the interfaces between CliffGuard and the
// physical-design machinery: design structures (projections, indices,
// materialized views), what-if cost models, and the nominal Designer
// contract that CliffGuard drives as a black box (Section 2's design
// principle: CliffGuard never looks inside the designer, it only feeds it
// workloads and reads back designs).
package designer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cliffguard/internal/workload"
)

// Structure is one physical design object: a projection, an index, or a
// materialized view. Structures are immutable once created.
type Structure interface {
	// Key is a canonical identity: two structures with the same key are the
	// same physical object.
	Key() string
	// SizeBytes is the modeled storage footprint.
	SizeBytes() int64
	// Describe renders a human-readable summary.
	Describe() string
}

// Design is a set of structures. The zero value is the empty design
// (paper's NoDesign: every query runs off the base table/super-projection).
//
// A design's structure set must not be mutated after it is first
// fingerprinted (the constructors and With never mutate; they build fresh
// designs, so idiomatic use is safe by construction).
type Design struct {
	Structures []Structure

	// fp caches Fingerprint. 0 means "not yet computed"; computed values are
	// remapped away from 0, so a benign store race can only write the same
	// value twice.
	fp atomic.Uint64
}

// NewDesign builds a design, deduplicating structures by key.
func NewDesign(structures ...Structure) *Design {
	d := &Design{}
	seen := make(map[string]bool, len(structures))
	for _, s := range structures {
		if s == nil || seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		d.Structures = append(d.Structures, s)
	}
	return d
}

// SizeBytes returns the total storage footprint of the design.
func (d *Design) SizeBytes() int64 {
	if d == nil {
		return 0
	}
	var total int64
	for _, s := range d.Structures {
		total += s.SizeBytes()
	}
	return total
}

// Len returns the number of structures; nil-safe.
func (d *Design) Len() int {
	if d == nil {
		return 0
	}
	return len(d.Structures)
}

// Keys returns the set of structure keys; nil-safe.
func (d *Design) Keys() map[string]bool {
	out := make(map[string]bool, d.Len())
	if d != nil {
		for _, s := range d.Structures {
			out[s.Key()] = true
		}
	}
	return out
}

// Fingerprint returns a canonical 64-bit identity of the design: an FNV-1a
// hash over the sorted, deduplicated structure keys together with each
// structure's modeled size (the budget-relevant field). Two designs holding
// the same structures — in any order, with any duplication — fingerprint
// identically, which is what lets CliffGuard recognize "the designer returned
// the incumbent again" across iterations and reuse memoized unit costs.
// Nil and empty designs share one fingerprint. The value is computed once
// and cached; it is never 0.
func (d *Design) Fingerprint() uint64 {
	if d == nil {
		return emptyFingerprint
	}
	if v := d.fp.Load(); v != 0 {
		return v
	}
	keys := make([]string, 0, len(d.Structures))
	sizes := make(map[string]int64, len(d.Structures))
	for _, s := range d.Structures {
		k := s.Key()
		if _, dup := sizes[k]; dup {
			continue
		}
		sizes[k] = s.SizeBytes()
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := uint64(fnvOffset)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h = (h ^ uint64(k[i])) * fnvPrime
		}
		h = (h ^ 0xff) * fnvPrime // key terminator: "ab"+"c" != "a"+"bc"
		sz := uint64(sizes[k])
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ (sz >> shift & 0xff)) * fnvPrime
		}
	}
	if h == 0 {
		h = 1
	}
	d.fp.Store(h)
	return h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	// emptyFingerprint is Fingerprint() of a design with no structures: the
	// bare FNV offset basis (the hash loop body never runs).
	emptyFingerprint = uint64(fnvOffset)
)

// With returns a new design with s appended (no mutation of d).
func (d *Design) With(s Structure) *Design {
	out := &Design{Structures: make([]Structure, 0, d.Len()+1)}
	if d != nil {
		out.Structures = append(out.Structures, d.Structures...)
	}
	out.Structures = append(out.Structures, s)
	return out
}

// String renders the design's structures sorted by key.
func (d *Design) String() string {
	if d.Len() == 0 {
		return "Design{}"
	}
	descs := make([]string, d.Len())
	for i, s := range d.Structures {
		descs[i] = s.Describe()
	}
	sort.Strings(descs)
	return "Design{\n  " + strings.Join(descs, "\n  ") + "\n}"
}

// ErrUnsupported marks queries outside an engine's costable subset (e.g.
// multi-table specs in the single-anchor simulators).
var ErrUnsupported = errors.New("designer: query not supported by this engine")

// CostModel is a what-if interface: it estimates the latency, in
// milliseconds, of running a query under a hypothetical design. This is the
// paper's f(W, D) building block; the paper notes f "is measured either via
// actual execution or by consulting the query optimizer's cost estimates"
// (Section 4.2) — the simulators provide both, and the experiments use the
// estimates.
//
// Cost observes ctx: implementations return ctx.Err() once the context is
// cancelled, which is how CliffGuard's parallel neighborhood evaluation
// aborts a slow what-if pass promptly.
type CostModel interface {
	Cost(ctx context.Context, q *workload.Query, d *Design) (float64, error)
}

// WorkloadCost returns f(W, D): the weighted sum of per-query latencies.
// Queries the engine cannot cost propagate their error.
func WorkloadCost(ctx context.Context, cm CostModel, w *workload.Workload, d *Design) (float64, error) {
	var total float64
	for _, it := range w.Items {
		c, err := cm.Cost(ctx, it.Q, d)
		if err != nil {
			return 0, fmt.Errorf("costing %s: %w", it.Q, err)
		}
		total += it.Weight * c
	}
	return total, nil
}

// Designer finds a design for a workload within its (construction-time)
// storage budget. Implementations are the paper's "existing designers";
// CliffGuard wraps one. Design observes ctx cancellation: a cancelled
// context aborts the (potentially long) candidate-selection loop with
// ctx.Err().
type Designer interface {
	Name() string
	Design(ctx context.Context, w *workload.Workload) (*Design, error)
}

// CompressByTemplate merges queries sharing a SWGO template into a single
// weighted representative (the highest-weight instance). Designers use this
// both for tractability and — in the DBMS-X-style designer — as the paper's
// "workload compression" anti-overfitting heuristic.
func CompressByTemplate(w *workload.Workload) *workload.Workload {
	type group struct {
		rep    *workload.Query
		repW   float64
		weight float64
	}
	groups := make(map[string]*group)
	var order []string
	for _, it := range w.Items {
		key := it.Q.TemplateKey(workload.MaskSWGO)
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.weight += it.Weight
		if it.Weight > g.repW || g.rep == nil {
			g.rep, g.repW = it.Q, it.Weight
		}
	}
	out := &workload.Workload{}
	for _, key := range order {
		g := groups[key]
		out.Add(g.rep, g.weight)
	}
	return out
}

// GreedySelect implements the selection loop shared by the nominal
// designers: repeatedly add the candidate structure with the highest
// benefit-per-byte under the current design until the budget is exhausted or
// no candidate helps. Benefit is the reduction in f(W, D).
//
// The loop exploits the engines' min-composition property — the cost of a
// query under a design is the minimum of its per-structure access-path costs
// — to evaluate candidates incrementally: each (query, structure) pair is
// costed once, and a pick only lowers the per-query running minimum.
func GreedySelect(ctx context.Context, cm CostModel, w *workload.Workload, candidates []Structure, budget int64) (*Design, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	design := NewDesign()
	if len(candidates) == 0 {
		return design, nil
	}
	var structures []Structure
	seen := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		if c == nil || seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		structures = append(structures, c)
	}

	nq := len(w.Items)
	cur := make([]float64, nq)
	for i, it := range w.Items {
		c, err := cm.Cost(ctx, it.Q, nil)
		if err != nil {
			return nil, fmt.Errorf("costing %s: %w", it.Q, err)
		}
		cur[i] = c
	}
	// pair[s][q]: cost of query q with structure s alone.
	pair := make([][]float64, len(structures))
	for si, s := range structures {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, nq)
		d := NewDesign(s)
		for qi, it := range w.Items {
			c, err := cm.Cost(ctx, it.Q, d)
			if err != nil {
				return nil, fmt.Errorf("costing %s: %w", it.Q, err)
			}
			row[qi] = c
		}
		pair[si] = row
	}

	taken := make([]bool, len(structures))
	used := int64(0)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestIdx := -1
		bestScore := 0.0
		for si, s := range structures {
			if taken[si] || used+s.SizeBytes() > budget {
				continue
			}
			var gain float64
			for qi, it := range w.Items {
				if c := pair[si][qi]; c < cur[qi] {
					gain += it.Weight * (cur[qi] - c)
				}
			}
			if gain <= 0 {
				continue
			}
			score := gain / float64(maxI64(s.SizeBytes(), 1))
			if bestIdx < 0 || score > bestScore {
				bestIdx, bestScore = si, score
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		design = design.With(structures[bestIdx])
		used += structures[bestIdx].SizeBytes()
		for qi := range cur {
			if c := pair[bestIdx][qi]; c < cur[qi] {
				cur[qi] = c
			}
		}
	}
	return design, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
