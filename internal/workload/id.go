package workload

import "sync/atomic"

var idCounter atomic.Int64

// NextID returns a process-unique query ID. Workload generators and the
// sampler's mutator use it so that distinct query objects never share an ID.
func NextID() int64 { return idCounter.Add(1) }
