package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestColSetBasics(t *testing.T) {
	var s ColSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("zero ColSet should be empty")
	}
	s.Add(3)
	s.Add(70) // second word
	s.Add(3)  // duplicate
	if s.Len() != 2 || !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Fatalf("unexpected set state: %v", s)
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Fatal("Remove failed")
	}
	s.Remove(-1)  // no-op
	s.Remove(999) // absent, beyond words: no-op
	if s.Len() != 1 {
		t.Fatal("no-op removes changed the set")
	}
	if s.Has(-1) {
		t.Fatal("negative ID should never be present")
	}
}

func TestColSetAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	var s ColSet
	s.Add(-1)
}

func TestColSetOps(t *testing.T) {
	a := NewColSet(1, 2, 3, 100)
	b := NewColSet(3, 4, 100, 200)

	if got := a.Union(b).IDs(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 100, 200}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).IDs(); !reflect.DeepEqual(got, []int{3, 100}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b).IDs(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Union(b).Contains(a) || !a.Union(b).Contains(b) {
		t.Error("union should contain both operands")
	}
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
	if got := a.Hamming(b); got != 4 { // {1,2} vs {4,200}
		t.Errorf("Hamming = %d, want 4", got)
	}
	if a.Hamming(a) != 0 {
		t.Error("Hamming(x,x) != 0")
	}
}

func TestColSetEqualAcrossWordLengths(t *testing.T) {
	a := NewColSet(1)
	b := NewColSet(1, 100)
	b.Remove(100) // b now has trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("logically equal sets with different word lengths should be Equal")
	}
	if a.Key() != b.Key() {
		t.Fatalf("Keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestColSetCloneIndependence(t *testing.T) {
	a := NewColSet(1, 2)
	c := a.Clone()
	c.Add(3)
	if a.Has(3) {
		t.Fatal("Clone should be independent")
	}
}

func TestColSetString(t *testing.T) {
	if got := NewColSet(5, 1, 9).String(); got != "{1,5,9}" {
		t.Errorf("String = %q", got)
	}
	if got := (ColSet{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// randomSet builds a ColSet from quick's random values, bounded to IDs < 300.
func randomSet(rng *rand.Rand) ColSet {
	var s ColSet
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		s.Add(rng.Intn(300))
	}
	return s
}

func TestColSetProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	// Hamming is symmetric and satisfies the triangle inequality.
	symmetric := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		return a.Hamming(b) == b.Hamming(a)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Error(err)
	}

	triangle := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomSet(rng), randomSet(rng), randomSet(rng)
		return a.Hamming(c) <= a.Hamming(b)+b.Hamming(c)
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Error(err)
	}

	// |A| + |B| = |A union B| + |A intersect B|.
	inclusionExclusion := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		return a.Len()+b.Len() == a.Union(b).Len()+a.Intersect(b).Len()
	}
	if err := quick.Check(inclusionExclusion, cfg); err != nil {
		t.Error(err)
	}

	// Hamming = |union| - |intersection|.
	hammingIdentity := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		return a.Hamming(b) == a.Union(b).Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(hammingIdentity, cfg); err != nil {
		t.Error(err)
	}

	// Minus then union with the intersection reconstructs the set.
	reconstruct := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		return a.Minus(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(reconstruct, cfg); err != nil {
		t.Error(err)
	}

	// Keys are canonical: equal sets share keys, distinct sets do not.
	keyCanonical := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng), randomSet(rng)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(keyCanonical, cfg); err != nil {
		t.Error(err)
	}

	// IDs round-trips through NewColSet.
	roundTrip := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSet(rng)
		return NewColSet(a.IDs()...).Equal(a)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Error(err)
	}
}
