package workload

import "math"

// ContentHash returns a canonical 64-bit identity of everything about the
// query that a deterministic what-if cost model can observe: the anchor
// table, the four clause column sets, and the full execution Spec
// (projected columns, aggregates, predicates with operator/bounds/selectivity,
// grouping, ordering, limit). Two queries with equal content hash identically
// even when they were parsed by different sessions and carry different IDs or
// timestamps — which is exactly what lets the serving layer share memoized
// unit costs across tenants running the same workload.
//
// The hash deliberately excludes ID, Timestamp and the original SQL text:
// none of them reach a cost model, and including them would defeat
// cross-tenant sharing. It is a pure function (FNV-1a over a canonical byte
// walk); callers that need it repeatedly should memoize by query pointer.
func ContentHash(q *Query) uint64 {
	h := newFNV()
	if q == nil {
		return h.sum()
	}
	h.colSet(q.Select)
	h.colSet(q.Where)
	h.colSet(q.GroupBy)
	h.colSet(q.OrderBy)
	if q.Spec == nil {
		return h.sum()
	}
	s := q.Spec
	h.str(s.Table)
	h.ints(s.SelectCols)
	h.int64(int64(len(s.Aggs)))
	for _, a := range s.Aggs {
		h.int64(int64(a.Fn))
		h.int64(int64(a.Col))
	}
	h.int64(int64(len(s.Preds)))
	for _, p := range s.Preds {
		h.int64(int64(p.Col))
		h.int64(int64(p.Op))
		h.int64(p.Lo)
		h.int64(p.Hi)
		h.uint64(math.Float64bits(p.Sel))
	}
	h.ints(s.GroupBy)
	h.int64(int64(len(s.OrderBy)))
	for _, o := range s.OrderBy {
		h.int64(int64(o.Col))
		if o.Desc {
			h.int64(1)
		} else {
			h.int64(0)
		}
	}
	h.int64(int64(s.Limit))
	return h.sum()
}

// fnv is a tiny incremental FNV-1a hasher with field separators, so adjacent
// variable-length sections ("ab"+"c" vs "a"+"bc") can never collide by
// concatenation.
type fnv struct{ h uint64 }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newFNV() *fnv { return &fnv{h: fnvOffset64} }

func (f *fnv) byte(b byte) { f.h = (f.h ^ uint64(b)) * fnvPrime64 }

func (f *fnv) sep() { f.byte(0xff) }

func (f *fnv) uint64(v uint64) {
	for shift := 0; shift < 64; shift += 8 {
		f.byte(byte(v >> shift))
	}
}

func (f *fnv) int64(v int64) { f.uint64(uint64(v)) }

func (f *fnv) str(s string) {
	for i := 0; i < len(s); i++ {
		f.byte(s[i])
	}
	f.sep()
}

func (f *fnv) ints(v []int) {
	f.int64(int64(len(v)))
	for _, x := range v {
		f.int64(int64(x))
	}
}

func (f *fnv) colSet(s ColSet) {
	ids := s.IDs()
	f.int64(int64(len(ids)))
	for _, id := range ids {
		f.int64(int64(id))
	}
}

func (f *fnv) sum() uint64 { return f.h }
