package workload

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FrozenVector is an immutable, interned snapshot of a workload's normalized
// template-frequency vector under one clause mask: the same data Vector and
// VectorWithSets return as maps, flattened into key-sorted parallel slices.
// Freezing is what makes the distance metrics cheap against a repeated
// operand (the sampler evaluates delta(W0, ·) hundreds of times per
// Gamma-neighborhood): the map construction and key sort happen once per
// workload instead of once per distance call, and the vector's quadratic
// self-term is memoized for the template-disjoint fast path.
//
// A FrozenVector must never be mutated; Workload.Frozen hands the same
// instance to concurrent callers.
type FrozenVector struct {
	// Keys holds the template keys in ascending (sort.Strings) order — the
	// exact order the distance metrics visit map keys in, so a frozen-vector
	// distance is bit-identical to the historical map-based one.
	Keys []string
	// Freqs holds the normalized frequency of each template, aligned with
	// Keys. Values are accumulated in item order, matching Vector exactly.
	Freqs []float64
	// Sets holds the representative masked column set per template.
	Sets []ColSet

	selfOnce sync.Once
	self     float64
}

// Len returns the number of distinct templates.
func (fv *FrozenVector) Len() int { return len(fv.Keys) }

// HasKey reports whether the template key is present, by binary search over
// the sorted key slice. The sampler's fresh-template filter uses this instead
// of building a TemplateSet map per draw.
func (fv *FrozenVector) HasKey(k string) bool {
	i := sort.SearchStrings(fv.Keys, k)
	return i < len(fv.Keys) && fv.Keys[i] == k
}

// SelfQuad returns the vector's unnormalized quadratic self-term
//
//	sum_{i<j} 2 * f_i * f_j * Hamming(set_i, set_j)
//
// computed once and memoized. For two template-disjoint workloads the
// frequency-difference vector is the concatenation of their frequency
// vectors, so delta_euclidean decomposes into the two self-terms plus a
// cross-term — and the self-term of a repeated operand (the sampler's W0)
// amortizes to zero cost.
func (fv *FrozenVector) SelfQuad() float64 {
	fv.selfOnce.Do(func() {
		var total float64
		for i := range fv.Freqs {
			for j := i + 1; j < len(fv.Freqs); j++ {
				total += 2 * fv.Freqs[i] * fv.Freqs[j] * float64(fv.Sets[i].Hamming(fv.Sets[j]))
			}
		}
		fv.self = total
	})
	return fv.self
}

// FrozenSeparateVector is the FrozenVector analogue for the 4-tuple
// (delta_separate) representation: per-clause column sets are kept distinct.
type FrozenSeparateVector struct {
	// Keys holds the 4-tuple template keys in ascending order.
	Keys []string
	// Freqs holds the normalized frequency of each template, aligned with Keys.
	Freqs []float64
	// Sets holds the per-clause column sets of each template.
	Sets [][numClauses]ColSet

	selfOnce sync.Once
	self     float64
}

// Len returns the number of distinct templates.
func (fv *FrozenSeparateVector) Len() int { return len(fv.Keys) }

// SelfQuad returns the unnormalized quadratic self-term under the 4-tuple
// Hamming distance (summed across the four clause sets), memoized.
func (fv *FrozenSeparateVector) SelfQuad() float64 {
	fv.selfOnce.Do(func() {
		var total float64
		for i := range fv.Freqs {
			for j := i + 1; j < len(fv.Freqs); j++ {
				ham := 0
				for c := 0; c < int(numClauses); c++ {
					ham += fv.Sets[i][c].Hamming(fv.Sets[j][c])
				}
				total += 2 * fv.Freqs[i] * fv.Freqs[j] * float64(ham)
			}
		}
		fv.self = total
	})
	return fv.self
}

// frozenSet is one immutable generation of a workload's frozen-vector cache:
// one FrozenVector per clause mask seen so far, plus the separate-variant
// vector. Updates copy the whole set (copy-on-write) and publish it with a
// CAS, so readers never lock and Add can invalidate with a single nil store.
type frozenSet struct {
	byMask map[ClauseMask]*FrozenVector
	sep    *FrozenSeparateVector
}

// Frozen returns the workload's frozen frequency vector under the mask,
// computing and caching it on first use. The cache is invalidated by Add (and
// not shared by Clone), so a workload that is still being assembled stays
// correct; concurrent calls are safe and return equivalent vectors.
//
// Callers must treat the result as immutable.
func (w *Workload) Frozen(m ClauseMask) *FrozenVector {
	for {
		cur := w.frozen.Load()
		if cur != nil {
			if fv, ok := cur.byMask[m]; ok {
				return fv
			}
		}
		fv := w.buildFrozen(m)
		next := &frozenSet{byMask: map[ClauseMask]*FrozenVector{m: fv}}
		if cur != nil {
			for k, v := range cur.byMask {
				if k != m {
					next.byMask[k] = v
				}
			}
			next.sep = cur.sep
		}
		if w.frozen.CompareAndSwap(cur, next) {
			return fv
		}
		// Lost a publish race; retry so every caller converges on one
		// generation. A duplicate build is deterministic, so either
		// instance carries identical values.
	}
}

// FrozenSeparate returns the workload's frozen 4-tuple frequency vector,
// computing and caching it on first use (same contract as Frozen).
func (w *Workload) FrozenSeparate() *FrozenSeparateVector {
	for {
		cur := w.frozen.Load()
		if cur != nil && cur.sep != nil {
			return cur.sep
		}
		fv := w.buildFrozenSeparate()
		next := &frozenSet{byMask: map[ClauseMask]*FrozenVector{}, sep: fv}
		if cur != nil {
			for k, v := range cur.byMask {
				next.byMask[k] = v
			}
		}
		if w.frozen.CompareAndSwap(cur, next) {
			return fv
		}
	}
}

// invalidateFrozen drops every cached frozen vector; called on mutation.
func (w *Workload) invalidateFrozen() { w.frozen.Store(nil) }

// buildFrozen flattens VectorWithSets into key-sorted slices. The map
// accumulation below must stay byte-for-byte the arithmetic of
// VectorWithSets (two-phase: raw weights summed per key, divided once):
// frozen and map-based distances are asserted bit-identical.
func (w *Workload) buildFrozen(m ClauseMask) *FrozenVector {
	total := w.TotalWeight()
	fv := &FrozenVector{}
	if total <= 0 {
		return fv
	}
	freqs := make(map[string]float64, len(w.Items))
	sets := make(map[string]ColSet, len(w.Items))
	for _, it := range w.Items {
		cols := it.Q.MaskedColumns(m)
		key := cols.Key()
		freqs[key] += it.Weight
		if _, ok := sets[key]; !ok {
			sets[key] = cols
		}
	}
	for k := range freqs {
		freqs[k] /= total
	}
	fv.Keys = make([]string, 0, len(freqs))
	for k := range freqs {
		fv.Keys = append(fv.Keys, k)
	}
	sort.Strings(fv.Keys)
	fv.Freqs = make([]float64, len(fv.Keys))
	fv.Sets = make([]ColSet, len(fv.Keys))
	for i, k := range fv.Keys {
		fv.Freqs[i] = freqs[k]
		fv.Sets[i] = sets[k]
	}
	return fv
}

// buildFrozenSeparate flattens SeparateVector the same way.
func (w *Workload) buildFrozenSeparate() *FrozenSeparateVector {
	total := w.TotalWeight()
	fv := &FrozenSeparateVector{}
	if total <= 0 {
		return fv
	}
	freqs := make(map[string]float64, len(w.Items))
	sets := make(map[string][numClauses]ColSet, len(w.Items))
	for _, it := range w.Items {
		key := it.Q.SeparateKey()
		freqs[key] += it.Weight
		if _, ok := sets[key]; !ok {
			sets[key] = [numClauses]ColSet{
				it.Q.Select, it.Q.Where, it.Q.GroupBy, it.Q.OrderBy,
			}
		}
	}
	for k := range freqs {
		freqs[k] /= total
	}
	fv.Keys = make([]string, 0, len(freqs))
	for k := range freqs {
		fv.Keys = append(fv.Keys, k)
	}
	sort.Strings(fv.Keys)
	fv.Freqs = make([]float64, len(fv.Keys))
	fv.Sets = make([][numClauses]ColSet, len(fv.Keys))
	for i, k := range fv.Keys {
		fv.Freqs[i] = freqs[k]
		fv.Sets[i] = sets[k]
	}
	return fv
}

// frozenPtr is the cache field embedded in Workload. It lives here (not in
// workload.go) to keep the frozen machinery in one file; the type alias keeps
// the Workload struct declaration readable.
type frozenPtr = atomic.Pointer[frozenSet]
