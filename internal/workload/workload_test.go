package workload

import (
	"math"
	"strings"
	"testing"
	"time"
)

func specOn(table string, sel, where, group, order []int) *Spec {
	spec := &Spec{Table: table, SelectCols: sel}
	for _, c := range where {
		spec.Preds = append(spec.Preds, Pred{Col: c, Op: Eq, Lo: 1, Hi: 1, Sel: 0.1})
	}
	spec.GroupBy = group
	for _, c := range order {
		spec.OrderBy = append(spec.OrderBy, OrderCol{Col: c})
	}
	return spec
}

func TestFromSpecClauseSets(t *testing.T) {
	spec := specOn("t", []int{1, 2}, []int{3}, []int{4}, []int{5})
	spec.Aggs = []Agg{{Fn: Sum, Col: 6}, {Fn: Count, Col: -1}}
	q := FromSpec(7, time.Unix(100, 0), spec)

	if q.ID != 7 || !q.Timestamp.Equal(time.Unix(100, 0)) {
		t.Fatal("ID/timestamp not stamped")
	}
	// Aggregate columns count as SELECT columns; COUNT(*) adds nothing.
	if got := q.Select.IDs(); len(got) != 3 || !q.Select.Has(6) {
		t.Errorf("Select = %v", got)
	}
	if !q.Where.Has(3) || !q.GroupBy.Has(4) || !q.OrderBy.Has(5) {
		t.Error("clause sets wrong")
	}
	want := NewColSet(1, 2, 3, 4, 5, 6)
	if !q.Columns().Equal(want) {
		t.Errorf("Columns = %v, want %v", q.Columns(), want)
	}
}

func TestClauseMask(t *testing.T) {
	spec := specOn("t", []int{1}, []int{2}, []int{3}, []int{4})
	q := FromSpec(1, time.Time{}, spec)

	cases := []struct {
		mask ClauseMask
		want ColSet
		name string
	}{
		{MaskSelect, NewColSet(1), "S"},
		{MaskWhere, NewColSet(2), "W"},
		{MaskGroupBy, NewColSet(3), "G"},
		{MaskOrderBy, NewColSet(4), "O"},
		{MaskSWGO, NewColSet(1, 2, 3, 4), "SWGO"},
		{MaskSelect | MaskWhere, NewColSet(1, 2), "SW"},
	}
	for _, tc := range cases {
		if got := q.MaskedColumns(tc.mask); !got.Equal(tc.want) {
			t.Errorf("MaskedColumns(%s) = %v, want %v", tc.mask, got, tc.want)
		}
		if tc.mask.String() != tc.name {
			t.Errorf("mask String = %q, want %q", tc.mask.String(), tc.name)
		}
	}
	if ClauseMask(0).String() != "(none)" {
		t.Error("zero mask should render (none)")
	}
}

func TestTemplateKeys(t *testing.T) {
	// Same columns in different clauses: same SWGO template, different
	// separate keys.
	q1 := FromSpec(1, time.Time{}, specOn("t", []int{1}, []int{2}, nil, nil))
	q2 := FromSpec(2, time.Time{}, specOn("t", []int{2}, []int{1}, nil, nil))
	if q1.TemplateKey(MaskSWGO) != q2.TemplateKey(MaskSWGO) {
		t.Error("SWGO templates should match")
	}
	if q1.SeparateKey() == q2.SeparateKey() {
		t.Error("separate keys should differ")
	}
}

func TestWorkloadBasics(t *testing.T) {
	q1 := FromSpec(1, time.Time{}, specOn("t", []int{1}, nil, nil, nil))
	q2 := FromSpec(2, time.Time{}, specOn("t", []int{2}, nil, nil, nil))
	w := New(q1, q2)
	if w.Len() != 2 || w.TotalWeight() != 2 {
		t.Fatalf("Len=%d TotalWeight=%f", w.Len(), w.TotalWeight())
	}
	w.Add(q1, 3)
	if w.TotalWeight() != 5 {
		t.Fatal("weighted add failed")
	}
	w.Add(q1, 0)  // ignored
	w.Add(q1, -1) // ignored
	if w.Len() != 3 {
		t.Fatal("non-positive weights should be ignored")
	}

	v := w.Vector(MaskSWGO)
	if len(v) != 2 {
		t.Fatalf("vector has %d templates, want 2", len(v))
	}
	if got := v[q1.TemplateKey(MaskSWGO)]; math.Abs(got-4.0/5) > 1e-12 {
		t.Errorf("q1 frequency = %f, want 0.8", got)
	}
	var sum float64
	for _, f := range v {
		sum += f
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("frequencies sum to %f", sum)
	}
}

func TestWorkloadCloneUnionScale(t *testing.T) {
	q := FromSpec(1, time.Time{}, specOn("t", []int{1}, nil, nil, nil))
	w := New(q)
	c := w.Clone()
	c.Add(q, 5)
	if w.Len() != 1 {
		t.Fatal("Clone is not independent")
	}
	u := w.Union(c)
	if u.TotalWeight() != 7 {
		t.Fatalf("Union weight = %f", u.TotalWeight())
	}
	s := w.Scale(3)
	if s.TotalWeight() != 3 || w.TotalWeight() != 1 {
		t.Fatal("Scale wrong or mutated receiver")
	}
}

func TestSharedTemplateFraction(t *testing.T) {
	qa := FromSpec(1, time.Time{}, specOn("t", []int{1}, nil, nil, nil))
	qb := FromSpec(2, time.Time{}, specOn("t", []int{2}, nil, nil, nil))
	qa2 := FromSpec(3, time.Time{}, specOn("t", []int{1}, nil, nil, nil)) // same template as qa

	w1 := New(qa, qb) // templates {1}, {2}
	w2 := New(qa2)    // template {1}
	if got := w1.SharedTemplateFraction(w2, MaskSWGO); got != 0.5 {
		t.Errorf("shared fraction = %f, want 0.5", got)
	}
	if got := w2.SharedTemplateFraction(w1, MaskSWGO); got != 1.0 {
		t.Errorf("reverse shared fraction = %f, want 1", got)
	}
	empty := &Workload{}
	if got := empty.SharedTemplateFraction(w1, MaskSWGO); got != 0 {
		t.Errorf("empty shared fraction = %f", got)
	}
}

func TestWindows(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	day := 24 * time.Hour
	var queries []*Query
	// Days 0, 1, 8, 29 -> windows of 7 days: [0], [1], [8], gap, [29].
	for _, d := range []int{0, 1, 8, 29} {
		q := FromSpec(int64(d), base.Add(time.Duration(d)*day), specOn("t", []int{1}, nil, nil, nil))
		queries = append(queries, q)
	}
	windows := Windows(queries, 7*day)
	if len(windows) != 5 {
		t.Fatalf("got %d windows, want 5", len(windows))
	}
	wantCounts := []int{2, 1, 0, 0, 1}
	for i, want := range wantCounts {
		if windows[i].Len() != want {
			t.Errorf("window %d has %d queries, want %d", i, windows[i].Len(), want)
		}
	}
	// Empty and degenerate inputs.
	if Windows(nil, 7*day) != nil {
		t.Error("Windows(nil) should be nil")
	}
	if Windows(queries, 0) != nil {
		t.Error("Windows(d=0) should be nil")
	}
}

func TestTimeSpan(t *testing.T) {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	q1 := FromSpec(1, base.Add(time.Hour), specOn("t", []int{1}, nil, nil, nil))
	q2 := FromSpec(2, base, specOn("t", []int{1}, nil, nil, nil))
	w := New(q1, q2)
	lo, hi := w.TimeSpan()
	if !lo.Equal(base) || !hi.Equal(base.Add(time.Hour)) {
		t.Fatalf("TimeSpan = %v..%v", lo, hi)
	}
	e := &Workload{}
	lo, hi = e.TimeSpan()
	if !lo.IsZero() || !hi.IsZero() {
		t.Fatal("empty TimeSpan should be zero")
	}
}

func TestNextIDUnique(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		id := NextID()
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestSortPredsBySelectivity(t *testing.T) {
	spec := &Spec{Table: "t", Preds: []Pred{
		{Col: 1, Sel: 0.5}, {Col: 2, Sel: 0.01}, {Col: 3, Sel: 0.1},
	}}
	got := spec.SortPredsBySelectivity()
	if got[0].Col != 2 || got[1].Col != 3 || got[2].Col != 1 {
		t.Errorf("sorted preds = %v", got)
	}
	// Original order untouched.
	if spec.Preds[0].Col != 1 {
		t.Error("SortPredsBySelectivity mutated the spec")
	}
}

func TestReferencedCols(t *testing.T) {
	spec := specOn("t", []int{5, 1}, []int{9}, []int{3}, []int{7})
	spec.Aggs = []Agg{{Fn: Sum, Col: 11}, {Fn: Count, Col: -1}}
	got := spec.ReferencedCols()
	want := []int{1, 3, 5, 7, 9, 11}
	if len(got) != len(want) {
		t.Fatalf("ReferencedCols = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReferencedCols = %v, want %v", got, want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Between: "BETWEEN"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	fns := map[AggFn]string{Count: "COUNT", Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX"}
	for fn, want := range fns {
		if fn.String() != want {
			t.Errorf("AggFn(%d).String() = %q, want %q", int(fn), fn.String(), want)
		}
	}
	// Unknown values render diagnostically rather than panicking.
	if CmpOp(99).String() == "" || AggFn(99).String() == "" {
		t.Error("unknown enum should still render")
	}
}

func TestQueryString(t *testing.T) {
	q := FromSpec(7, time.Time{}, specOn("orders", []int{1}, []int{2}, nil, nil))
	s := q.String()
	if s == "" || !strings.Contains(s, "orders") || !strings.Contains(s, "Q7") {
		t.Errorf("Query.String() = %q", s)
	}
}

func TestComputeStats(t *testing.T) {
	q1 := FromSpec(1, time.Time{}, specOn("t", []int{1}, []int{2}, nil, nil))
	q2spec := specOn("t", []int{3}, nil, []int{4}, []int{3})
	q2spec.Aggs = []Agg{{Fn: Count, Col: -1}}
	q2 := FromSpec(2, time.Time{}, q2spec)
	w := &Workload{}
	w.Add(q1, 3)
	w.Add(q2, 1)

	st := ComputeStats(w)
	if st.Queries != 2 || st.TotalWeight != 4 || st.Templates != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.TopTemplates) != 2 || st.TopTemplates[0].Share != 0.75 {
		t.Fatalf("top templates = %+v", st.TopTemplates)
	}
	if st.ColumnUse[2].Where != 3 || st.ColumnUse[4].GroupBy != 1 || st.ColumnUse[3].OrderBy != 1 {
		t.Fatalf("column use = %+v", st.ColumnUse)
	}
	if st.Aggregated != 0.25 || st.Filtered != 0.75 || st.Ordered != 0.25 {
		t.Fatalf("shape shares = %+v", st)
	}
	if !strings.Contains(st.String(), "2 templates") {
		t.Errorf("String() = %q", st.String())
	}
	// Empty workload is well-defined.
	if e := ComputeStats(&Workload{}); e.Queries != 0 || e.Templates != 0 {
		t.Error("empty stats")
	}
}
