package workload_test

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"cliffguard/internal/distance"
	"cliffguard/internal/workload"
)

const hammerCols = 8

func hammerQuery(col int) *workload.Query {
	col = col % hammerCols
	return workload.FromSpec(workload.NextID(), time.Time{}, &workload.Spec{
		Table:      "facts",
		SelectCols: []int{col, (col + 1) % hammerCols},
		Preds: []workload.Pred{
			{Col: col, Op: workload.Eq, Lo: int64(col), Hi: int64(col), Sel: 0.01},
		},
	})
}

// TestFrozenCopyOnWriteHammer exercises the frozen-vector cache's
// copy-on-write publish discipline under -race: many readers freezing,
// cloning, and measuring distances concurrently (lock-free CAS publishes
// racing each other) while a writer mutates the workload under the external
// write lock the package documents for mutation. Two invariants are pinned:
//
//   - a FrozenVector, once returned, is never mutated again — a snapshot
//     taken before the hammer is bit-identical after it;
//   - every vector observed mid-hammer is internally consistent
//     (parallel Keys/Freqs/Sets slices of one generation, never a mix).
func TestFrozenCopyOnWriteHammer(t *testing.T) {
	w := &workload.Workload{}
	for i := 0; i < 16; i++ {
		w.Add(hammerQuery(i), 1+float64(i%3))
	}
	// The pre-hammer snapshot: COW means mutation builds fresh vectors and
	// never touches this one.
	before := w.Frozen(workload.MaskSWGO)
	beforeKeys := append([]string(nil), before.Keys...)
	beforeFreqs := append([]float64(nil), before.Freqs...)

	other := &workload.Workload{}
	for i := 0; i < 8; i++ {
		other.Add(hammerQuery(i+3), 2)
	}
	metric := distance.NewEuclidean(hammerCols)

	var mu sync.RWMutex // external lock: exclusive for Add, shared for reads
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	readers := 2 * runtime.NumCPU()
	if readers < 4 {
		readers = 4
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			masks := []workload.ClauseMask{workload.MaskSWGO, workload.MaskWhere}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				fv := w.Frozen(masks[(r+i)%len(masks)])
				sep := w.FrozenSeparate()
				c := w.Clone()
				d := metric.Distance(w, other)
				mu.RUnlock()
				if len(fv.Keys) != len(fv.Freqs) || len(fv.Keys) != len(fv.Sets) {
					select {
					case errs <- "frozen vector slices out of sync":
					default:
					}
					return
				}
				if sep.Len() != len(sep.Freqs) {
					select {
					case errs <- "separate vector slices out of sync":
					default:
					}
					return
				}
				if c.Len() == 0 || d < 0 {
					select {
					case errs <- "clone/distance observed impossible state":
					default:
					}
					return
				}
			}
		}(r)
	}

	for i := 0; i < 400; i++ {
		mu.Lock()
		w.Add(hammerQuery(i), 1+float64(i%5)/2)
		mu.Unlock()
		if i%16 == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}

	// The pre-hammer snapshot survived 400 mutations untouched.
	if len(before.Keys) != len(beforeKeys) {
		t.Fatalf("snapshot grew: %d keys, had %d", len(before.Keys), len(beforeKeys))
	}
	for i := range beforeKeys {
		if before.Keys[i] != beforeKeys[i] || before.Freqs[i] != beforeFreqs[i] {
			t.Fatalf("snapshot mutated at %d: (%s, %g) was (%s, %g)",
				i, before.Keys[i], before.Freqs[i], beforeKeys[i], beforeFreqs[i])
		}
	}
	// And the workload's current vector reflects all accepted adds.
	if got := w.Len(); got != 16+400 {
		t.Fatalf("workload has %d items, want %d", got, 16+400)
	}
}

// TestAddRejectsDegenerateWeights pins the Add hardening: nil queries and
// non-positive, NaN, or +Inf weights are dropped with a false return instead
// of silently corrupting the frequency vector.
func TestAddRejectsDegenerateWeights(t *testing.T) {
	w := &workload.Workload{}
	q := hammerQuery(0)
	bad := []float64{0, -1, math.NaN(), math.Inf(1)}
	for _, weight := range bad {
		if w.Add(q, weight) {
			t.Errorf("Add(q, %g) accepted", weight)
		}
	}
	if w.Add(nil, 1) {
		t.Error("Add(nil, 1) accepted")
	}
	if w.Len() != 0 {
		t.Fatalf("degenerate adds grew the workload to %d items", w.Len())
	}
	if !w.Add(q, 0.5) {
		t.Error("Add with a positive weight rejected")
	}
	if w.Len() != 1 || w.TotalWeight() != 0.5 {
		t.Fatalf("workload after one good add: len=%d weight=%g", w.Len(), w.TotalWeight())
	}
}
