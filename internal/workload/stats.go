package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a workload: volumes, template structure and column usage.
// The wlgen CLI prints it, and it is handy when inspecting drift by hand.
type Stats struct {
	Queries     int
	TotalWeight float64
	Templates   int // distinct SWGO templates

	// TopTemplates lists the heaviest templates' share of total weight,
	// descending, capped at 10 entries.
	TopTemplates []TemplateShare

	// ColumnUse counts how many queries reference each column (weighted),
	// split by clause.
	ColumnUse map[int]ClauseCounts

	// Shape histograms (weighted fractions).
	Aggregated float64 // share of weight with aggregates
	Filtered   float64 // share of weight with at least one predicate
	Ordered    float64 // share of weight with ORDER BY
}

// TemplateShare is one entry of Stats.TopTemplates.
type TemplateShare struct {
	Columns ColSet
	Share   float64
}

// ClauseCounts is the weighted usage of one column per clause.
type ClauseCounts struct {
	Select, Where, GroupBy, OrderBy float64
}

// ComputeStats summarizes the workload.
func ComputeStats(w *Workload) Stats {
	st := Stats{
		Queries:     w.Len(),
		TotalWeight: w.TotalWeight(),
		ColumnUse:   make(map[int]ClauseCounts),
	}
	if st.TotalWeight <= 0 {
		return st
	}
	type tmpl struct {
		cols  ColSet
		share float64
	}
	templates := make(map[string]*tmpl)
	for _, it := range w.Items {
		q, wt := it.Q, it.Weight
		key := q.TemplateKey(MaskSWGO)
		tm, ok := templates[key]
		if !ok {
			tm = &tmpl{cols: q.MaskedColumns(MaskSWGO)}
			templates[key] = tm
		}
		tm.share += wt / st.TotalWeight

		for _, c := range q.Select.IDs() {
			cc := st.ColumnUse[c]
			cc.Select += wt
			st.ColumnUse[c] = cc
		}
		for _, c := range q.Where.IDs() {
			cc := st.ColumnUse[c]
			cc.Where += wt
			st.ColumnUse[c] = cc
		}
		for _, c := range q.GroupBy.IDs() {
			cc := st.ColumnUse[c]
			cc.GroupBy += wt
			st.ColumnUse[c] = cc
		}
		for _, c := range q.OrderBy.IDs() {
			cc := st.ColumnUse[c]
			cc.OrderBy += wt
			st.ColumnUse[c] = cc
		}
		if q.Spec != nil {
			if len(q.Spec.Aggs) > 0 {
				st.Aggregated += wt / st.TotalWeight
			}
			if len(q.Spec.Preds) > 0 {
				st.Filtered += wt / st.TotalWeight
			}
			if len(q.Spec.OrderBy) > 0 {
				st.Ordered += wt / st.TotalWeight
			}
		}
	}
	st.Templates = len(templates)
	for _, tm := range templates {
		st.TopTemplates = append(st.TopTemplates, TemplateShare{Columns: tm.cols, Share: tm.share})
	}
	sort.SliceStable(st.TopTemplates, func(i, j int) bool {
		if st.TopTemplates[i].Share != st.TopTemplates[j].Share {
			return st.TopTemplates[i].Share > st.TopTemplates[j].Share
		}
		return st.TopTemplates[i].Columns.Key() < st.TopTemplates[j].Columns.Key()
	})
	if len(st.TopTemplates) > 10 {
		st.TopTemplates = st.TopTemplates[:10]
	}
	return st
}

// String renders a human-readable summary.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d queries (weight %.0f), %d templates; %.0f%% aggregated, %.0f%% filtered, %.0f%% ordered\n",
		st.Queries, st.TotalWeight, st.Templates,
		100*st.Aggregated, 100*st.Filtered, 100*st.Ordered)
	for i, ts := range st.TopTemplates {
		fmt.Fprintf(&b, "  top template %2d: %5.1f%% %s\n", i+1, ts.Share*100, ts.Columns)
	}
	return b.String()
}
