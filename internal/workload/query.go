// Package workload models SQL workloads the way CliffGuard sees them: each
// query is reduced to the sets of columns appearing in its SELECT, WHERE,
// GROUP BY and ORDER BY clauses (the paper's 4-tuple representation,
// Section 5), plus enough structural detail (predicates, aggregates) for the
// engine simulators to cost and execute it. Workloads are weighted multisets
// of queries, split into time windows for the window-by-window redesign
// experiments of Section 6.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// CmpOp is a comparison operator in a WHERE predicate.
type CmpOp int

const (
	// Eq is equality (col = v).
	Eq CmpOp = iota
	// Lt is strictly-less (col < v).
	Lt
	// Le is less-or-equal (col <= v).
	Le
	// Gt is strictly-greater (col > v).
	Gt
	// Ge is greater-or-equal (col >= v).
	Ge
	// Between is a closed range (col BETWEEN lo AND hi).
	Between
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Between:
		return "BETWEEN"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Pred is one conjunct of a query's WHERE clause. Lo/Hi carry the literal
// bounds as int64-comparable values (the engines store int64 and
// dictionary-coded strings; floats are compared by their int64 bucketing).
// Sel is the predicate's selectivity estimate in (0, 1]; the engines fall
// back to it when literal bounds are absent.
type Pred struct {
	Col int
	Op  CmpOp
	Lo  int64
	Hi  int64
	Sel float64
}

// AggFn is an aggregate function in the SELECT list.
type AggFn int

const (
	// Count is COUNT(*) or COUNT(col).
	Count AggFn = iota
	// Sum is SUM(col).
	Sum
	// Avg is AVG(col).
	Avg
	// Min is MIN(col).
	Min
	// Max is MAX(col).
	Max
)

// String returns the SQL spelling of the aggregate.
func (f AggFn) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AggFn(%d)", int(f))
	}
}

// Agg is one aggregate expression. Col is -1 for COUNT(*).
type Agg struct {
	Fn  AggFn
	Col int
}

// OrderCol is one ORDER BY key.
type OrderCol struct {
	Col  int
	Desc bool
}

// Spec is the execution-relevant structure of a query against a single
// anchor table: which columns are projected, how rows are filtered, grouped
// and ordered. The engine simulators cost and execute Specs.
type Spec struct {
	Table      string
	SelectCols []int // bare projected columns (non-aggregate)
	Aggs       []Agg
	Preds      []Pred
	GroupBy    []int
	OrderBy    []OrderCol
	Limit      int // 0 means no limit
}

// Query is one workload query: its clause column sets, timestamp, and Spec.
type Query struct {
	ID        int64
	Timestamp time.Time
	SQL       string // original text, if the query came from a parser/renderer

	// Per-clause column sets: the paper's 4-tuple representation.
	Select  ColSet
	Where   ColSet
	GroupBy ColSet
	OrderBy ColSet

	Spec *Spec
}

// FromSpec builds a Query whose clause sets are derived from the Spec.
func FromSpec(id int64, ts time.Time, spec *Spec) *Query {
	q := &Query{ID: id, Timestamp: ts, Spec: spec}
	for _, c := range spec.SelectCols {
		q.Select.Add(c)
	}
	for _, a := range spec.Aggs {
		if a.Col >= 0 {
			q.Select.Add(a.Col)
		}
	}
	for _, p := range spec.Preds {
		q.Where.Add(p.Col)
	}
	for _, c := range spec.GroupBy {
		q.GroupBy.Add(c)
	}
	for _, o := range spec.OrderBy {
		q.OrderBy.Add(o.Col)
	}
	return q
}

// Columns returns the union of all clause column sets (the paper's
// "union of all the columns that appear in it" representation).
func (q *Query) Columns() ColSet {
	return q.Select.Union(q.Where).Union(q.GroupBy).Union(q.OrderBy)
}

// Clause identifies one of the four SQL clauses tracked per query.
type Clause int

const (
	// ClauseSelect is the SELECT list.
	ClauseSelect Clause = iota
	// ClauseWhere is the WHERE clause.
	ClauseWhere
	// ClauseGroupBy is the GROUP BY clause.
	ClauseGroupBy
	// ClauseOrderBy is the ORDER BY clause.
	ClauseOrderBy
	numClauses
)

// ClauseMask selects a subset of the four clauses when building workload
// vectors; the distance-function ablation (Figure 11) varies this mask.
type ClauseMask uint8

// Clause mask constants; combine with bitwise OR.
const (
	MaskSelect  ClauseMask = 1 << ClauseSelect
	MaskWhere   ClauseMask = 1 << ClauseWhere
	MaskGroupBy ClauseMask = 1 << ClauseGroupBy
	MaskOrderBy ClauseMask = 1 << ClauseOrderBy
	// MaskSWGO is the paper's default: union of all four clauses.
	MaskSWGO = MaskSelect | MaskWhere | MaskGroupBy | MaskOrderBy
)

// Has reports whether the mask includes clause c.
func (m ClauseMask) Has(c Clause) bool { return m&(1<<c) != 0 }

// String names the mask in the paper's style, e.g. "SWGO" or "W".
func (m ClauseMask) String() string {
	var b strings.Builder
	if m.Has(ClauseSelect) {
		b.WriteByte('S')
	}
	if m.Has(ClauseWhere) {
		b.WriteByte('W')
	}
	if m.Has(ClauseGroupBy) {
		b.WriteByte('G')
	}
	if m.Has(ClauseOrderBy) {
		b.WriteByte('O')
	}
	if b.Len() == 0 {
		return "(none)"
	}
	return b.String()
}

// ClauseSet returns the query's column set for one clause.
func (q *Query) ClauseSet(c Clause) ColSet {
	switch c {
	case ClauseSelect:
		return q.Select
	case ClauseWhere:
		return q.Where
	case ClauseGroupBy:
		return q.GroupBy
	case ClauseOrderBy:
		return q.OrderBy
	default:
		return ColSet{}
	}
}

// MaskedColumns returns the union of the clause sets selected by the mask.
func (q *Query) MaskedColumns(m ClauseMask) ColSet {
	var s ColSet
	for c := ClauseSelect; c < numClauses; c++ {
		if m.Has(c) {
			s = s.Union(q.ClauseSet(c))
		}
	}
	return s
}

// TemplateKey returns the canonical template identity of the query under the
// given clause mask: queries with identical masked column sets share a
// template (the paper's "templates", Section 6.2).
func (q *Query) TemplateKey(m ClauseMask) string {
	return q.MaskedColumns(m).Key()
}

// SeparateKey returns the template identity under the 4-tuple representation
// (delta_separate, Section 5): clause sets are kept distinct.
func (q *Query) SeparateKey() string {
	return q.Select.Key() + "|" + q.Where.Key() + "|" + q.GroupBy.Key() + "|" + q.OrderBy.Key()
}

// FoldKey returns the full structural identity of the query: two queries with
// equal FoldKeys are indistinguishable to every downstream consumer — same
// template under any clause mask, same SeparateKey, and same cost under any
// engine model (the Spec carries all literals and selectivities). The
// streaming ingestion path (internal/ingest) folds duplicate log lines into
// one weighted item keyed by FoldKey; anything weaker (e.g. TemplateKey,
// which drops predicates and literals) would merge queries with different
// costs and break the compressed-vs-naive equivalence.
//
// Queries without a Spec fall back to SeparateKey prefixed so the two key
// spaces cannot collide. Timestamps and IDs are deliberately excluded: folding
// across them is the point.
func (q *Query) FoldKey() string {
	if q.Spec == nil {
		return "nospec|" + q.SeparateKey()
	}
	s := q.Spec
	var b strings.Builder
	b.WriteString(s.Table)
	b.WriteString("|s")
	for _, c := range s.SelectCols {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	b.WriteString("|a")
	for _, a := range s.Aggs {
		b.WriteString(strconv.Itoa(int(a.Fn)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(a.Col))
		b.WriteByte(',')
	}
	b.WriteString("|p")
	for _, p := range s.Preds {
		b.WriteString(strconv.Itoa(p.Col))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(p.Op)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(p.Lo, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(p.Hi, 10))
		b.WriteByte(':')
		// Selectivity is keyed by its exact bit pattern: two predicates fold
		// only if their float64 Sel values are identical.
		b.WriteString(strconv.FormatUint(math.Float64bits(p.Sel), 16))
		b.WriteByte(',')
	}
	b.WriteString("|g")
	for _, c := range s.GroupBy {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	b.WriteString("|o")
	for _, o := range s.OrderBy {
		b.WriteString(strconv.Itoa(o.Col))
		if o.Desc {
			b.WriteByte('d')
		}
		b.WriteByte(',')
	}
	b.WriteString("|l")
	b.WriteString(strconv.Itoa(s.Limit))
	return b.String()
}

// String renders a one-line summary of the query.
func (q *Query) String() string {
	table := ""
	if q.Spec != nil {
		table = q.Spec.Table
	}
	return fmt.Sprintf("Q%d[%s] S%s W%s G%s O%s", q.ID, table,
		q.Select, q.Where, q.GroupBy, q.OrderBy)
}

// SortPredsBySelectivity returns the spec's predicates ordered most-selective
// first (ascending Sel). Designers use this to pick sort-key prefixes.
func (s *Spec) SortPredsBySelectivity() []Pred {
	out := make([]Pred, len(s.Preds))
	copy(out, s.Preds)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Sel < out[j].Sel })
	return out
}

// ReferencedCols returns every column the spec touches, ascending.
func (s *Spec) ReferencedCols() []int {
	var set ColSet
	for _, c := range s.SelectCols {
		set.Add(c)
	}
	for _, a := range s.Aggs {
		if a.Col >= 0 {
			set.Add(a.Col)
		}
	}
	for _, p := range s.Preds {
		set.Add(p.Col)
	}
	for _, c := range s.GroupBy {
		set.Add(c)
	}
	for _, o := range s.OrderBy {
		set.Add(o.Col)
	}
	return set.IDs()
}
