package workload

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Item is one weighted entry of a workload. Weight is the (possibly
// fractional) frequency of the query; the Γ-neighborhood sampler produces
// fractional weights so that sampled workloads land at an exact distance.
type Item struct {
	Q      *Query
	Weight float64
}

// Workload is a weighted multiset of queries. The zero value is empty.
//
// A Workload lazily caches frozen (interned) frequency vectors for the
// distance metrics — see Frozen/FrozenSeparate in frozen.go. The cache is
// invalidated by Add and never shared by Clone; code that mutates Items
// directly (only this package does) must call invalidateFrozen.
type Workload struct {
	Items []Item

	frozen frozenPtr
}

// New builds a workload from queries, each with weight 1.
func New(queries ...*Query) *Workload {
	w := &Workload{Items: make([]Item, 0, len(queries))}
	for _, q := range queries {
		w.Items = append(w.Items, Item{Q: q, Weight: 1})
	}
	return w
}

// Add appends a query with the given weight and reports whether the item was
// actually added. A non-positive (or NaN) weight would corrupt the frequency
// vector, so it is dropped and Add returns false — callers that assemble
// workloads from computed weights (window eviction, workload moves) must
// check the return or count skips, or a weight bug silently shrinks the
// workload. nil queries are dropped the same way.
func (w *Workload) Add(q *Query, weight float64) bool {
	if q == nil || !(weight > 0) || math.IsInf(weight, 1) {
		return false
	}
	w.Items = append(w.Items, Item{Q: q, Weight: weight})
	w.invalidateFrozen()
	return true
}

// Len returns the number of items (not total weight).
func (w *Workload) Len() int { return len(w.Items) }

// TotalWeight returns the sum of item weights.
func (w *Workload) TotalWeight() float64 {
	var t float64
	for _, it := range w.Items {
		t += it.Weight
	}
	return t
}

// Queries returns the distinct query pointers in item order.
func (w *Workload) Queries() []*Query {
	qs := make([]*Query, len(w.Items))
	for i, it := range w.Items {
		qs[i] = it.Q
	}
	return qs
}

// Clone returns a shallow copy (queries shared, items copied).
func (w *Workload) Clone() *Workload {
	out := &Workload{Items: make([]Item, len(w.Items))}
	copy(out.Items, w.Items)
	return out
}

// Union returns a new workload containing all items of w and v.
func (w *Workload) Union(v *Workload) *Workload {
	out := &Workload{Items: make([]Item, 0, len(w.Items)+len(v.Items))}
	out.Items = append(out.Items, w.Items...)
	out.Items = append(out.Items, v.Items...)
	return out
}

// Scale returns a copy of w with all weights multiplied by f (f > 0).
func (w *Workload) Scale(f float64) *Workload {
	out := w.Clone()
	for i := range out.Items {
		out.Items[i].Weight *= f
	}
	return out
}

// Vector returns the workload's normalized template-frequency vector under
// the given clause mask: template key -> fraction of total weight. This is
// the paper's V_W (Section 5), represented sparsely; the key doubles as the
// identity of the column subset.
//
// Frequencies are computed in two phases: raw weights are summed per key in
// item order, then each per-key sum is divided by the total weight once.
// For integer weights both phases are exact float64 arithmetic, so a
// template-compressed workload (one item of weight n per duplicate group,
// see internal/ingest) produces bit-identical frequencies to the uncompressed
// one (n items of weight 1) — the invariant the streaming ingestion path
// pins. All vector builders in this file share the same two-phase discipline.
func (w *Workload) Vector(m ClauseMask) map[string]float64 {
	total := w.TotalWeight()
	out := make(map[string]float64)
	if total <= 0 {
		return out
	}
	for _, it := range w.Items {
		out[it.Q.TemplateKey(m)] += it.Weight
	}
	for k := range out {
		out[k] /= total
	}
	return out
}

// VectorWithSets returns the normalized frequency vector along with a
// representative masked column set per template key. Distance computations
// need both the frequencies and the underlying column sets.
func (w *Workload) VectorWithSets(m ClauseMask) (map[string]float64, map[string]ColSet) {
	total := w.TotalWeight()
	freqs := make(map[string]float64)
	sets := make(map[string]ColSet)
	if total <= 0 {
		return freqs, sets
	}
	for _, it := range w.Items {
		cols := it.Q.MaskedColumns(m)
		key := cols.Key()
		freqs[key] += it.Weight
		if _, ok := sets[key]; !ok {
			sets[key] = cols
		}
	}
	for k := range freqs {
		freqs[k] /= total
	}
	return freqs, sets
}

// SeparateVector returns the normalized frequency vector under the 4-tuple
// (delta_separate) representation, with per-clause sets for each key.
func (w *Workload) SeparateVector() (map[string]float64, map[string][numClauses]ColSet) {
	total := w.TotalWeight()
	freqs := make(map[string]float64)
	sets := make(map[string][numClauses]ColSet)
	if total <= 0 {
		return freqs, sets
	}
	for _, it := range w.Items {
		key := it.Q.SeparateKey()
		freqs[key] += it.Weight
		if _, ok := sets[key]; !ok {
			sets[key] = [numClauses]ColSet{
				it.Q.Select, it.Q.Where, it.Q.GroupBy, it.Q.OrderBy,
			}
		}
	}
	for k := range freqs {
		freqs[k] /= total
	}
	return freqs, sets
}

// TemplateSet returns the set of template keys under the mask.
func (w *Workload) TemplateSet(m ClauseMask) map[string]bool {
	out := make(map[string]bool)
	for _, it := range w.Items {
		out[it.Q.TemplateKey(m)] = true
	}
	return out
}

// SharedTemplateFraction returns the fraction of w's weight belonging to
// templates that also occur in v (Figure 5's overlap measure).
func (w *Workload) SharedTemplateFraction(v *Workload, m ClauseMask) float64 {
	total := w.TotalWeight()
	if total <= 0 {
		return 0
	}
	vt := v.TemplateSet(m)
	var shared float64
	for _, it := range w.Items {
		if vt[it.Q.TemplateKey(m)] {
			shared += it.Weight
		}
	}
	return shared / total
}

// TimeSpan returns the earliest and latest query timestamps, or zero times
// for an empty workload.
func (w *Workload) TimeSpan() (time.Time, time.Time) {
	if len(w.Items) == 0 {
		return time.Time{}, time.Time{}
	}
	lo, hi := w.Items[0].Q.Timestamp, w.Items[0].Q.Timestamp
	for _, it := range w.Items[1:] {
		ts := it.Q.Timestamp
		if ts.Before(lo) {
			lo = ts
		}
		if ts.After(hi) {
			hi = ts
		}
	}
	return lo, hi
}

// String summarizes the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("Workload{%d items, weight %.1f, %d templates}",
		len(w.Items), w.TotalWeight(), len(w.TemplateSet(MaskSWGO)))
}

// Windows partitions timestamped queries into consecutive fixed-duration
// windows starting at the earliest timestamp (the paper's 4-week windows,
// Section 6.1). Queries are weight-1. Empty interior windows are preserved so
// window indexes correspond to elapsed time; callers typically skip empties.
func Windows(queries []*Query, d time.Duration) []*Workload {
	if len(queries) == 0 || d <= 0 {
		return nil
	}
	sorted := make([]*Query, len(queries))
	copy(sorted, queries)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Timestamp.Before(sorted[j].Timestamp)
	})
	start := sorted[0].Timestamp
	end := sorted[len(sorted)-1].Timestamp
	n := int(end.Sub(start)/d) + 1
	out := make([]*Workload, n)
	for i := range out {
		out[i] = &Workload{}
	}
	for _, q := range sorted {
		i := int(q.Timestamp.Sub(start) / d)
		if i >= n { // end boundary
			i = n - 1
		}
		out[i].Add(q, 1)
	}
	return out
}
