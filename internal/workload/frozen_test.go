package workload

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func frozenTestWorkload(rng *rand.Rand, n int) *Workload {
	w := &Workload{}
	for i := 0; i < n; i++ {
		spec := &Spec{Table: "t"}
		k := 1 + rng.Intn(4)
		for j := 0; j < k; j++ {
			spec.SelectCols = append(spec.SelectCols, rng.Intn(24))
		}
		spec.Preds = append(spec.Preds, Pred{Col: rng.Intn(24), Op: Eq, Sel: 0.01})
		if rng.Intn(2) == 0 {
			spec.GroupBy = append(spec.GroupBy, rng.Intn(24))
		}
		w.Add(FromSpec(NextID(), time.Time{}, spec), 0.5+rng.Float64()*3)
	}
	return w
}

// TestFrozenMatchesVector pins the frozen vector to the map-based vector it
// replaces: same keys, bit-identical frequencies, same representative sets.
func TestFrozenMatchesVector(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w := frozenTestWorkload(rng, 30)

	for _, m := range []ClauseMask{MaskSWGO, MaskWhere, MaskSelect | MaskGroupBy} {
		freqs, sets := w.VectorWithSets(m)
		fv := w.Frozen(m)
		if fv.Len() != len(freqs) {
			t.Fatalf("mask %s: frozen has %d templates, map has %d", m, fv.Len(), len(freqs))
		}
		for i, k := range fv.Keys {
			if i > 0 && fv.Keys[i-1] >= k {
				t.Fatalf("mask %s: keys not strictly sorted at %d", m, i)
			}
			if fv.Freqs[i] != freqs[k] {
				t.Fatalf("mask %s: freq[%q] = %g, want %g (bit-identical)", m, k, fv.Freqs[i], freqs[k])
			}
			if !fv.Sets[i].Equal(sets[k]) {
				t.Fatalf("mask %s: set[%q] differs", m, k)
			}
			if !fv.HasKey(k) {
				t.Fatalf("mask %s: HasKey(%q) = false for present key", m, k)
			}
		}
		if fv.HasKey("no-such-template") {
			t.Fatal("HasKey true for absent key")
		}
	}

	sf, st := w.SeparateVector()
	sv := w.FrozenSeparate()
	if sv.Len() != len(sf) {
		t.Fatalf("separate: frozen has %d templates, map has %d", sv.Len(), len(sf))
	}
	for i, k := range sv.Keys {
		if sv.Freqs[i] != sf[k] {
			t.Fatalf("separate: freq[%q] = %g, want %g", k, sv.Freqs[i], sf[k])
		}
		for c := 0; c < 4; c++ {
			if !sv.Sets[i][c].Equal(st[k][c]) {
				t.Fatalf("separate: set[%q][%d] differs", k, c)
			}
		}
	}
}

// TestFrozenCaching checks identity caching, Add invalidation, and that Clone
// does not share (and therefore cannot stale-read) the cache.
func TestFrozenCaching(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	w := frozenTestWorkload(rng, 10)

	a := w.Frozen(MaskSWGO)
	if b := w.Frozen(MaskSWGO); a != b {
		t.Fatal("repeated Frozen did not return the cached instance")
	}
	// A second mask coexists with the first.
	wOnly := w.Frozen(MaskWhere)
	if c := w.Frozen(MaskSWGO); a != c {
		t.Fatal("caching a second mask evicted the first")
	}
	if wv := w.Frozen(MaskWhere); wv != wOnly {
		t.Fatal("second mask not cached")
	}
	sep := w.FrozenSeparate()
	if s2 := w.FrozenSeparate(); s2 != sep {
		t.Fatal("FrozenSeparate not cached")
	}
	if c := w.Frozen(MaskSWGO); a != c {
		t.Fatal("caching the separate vector evicted the masked one")
	}

	// Add invalidates: the new vector must reflect the added query.
	clone := w.Clone()
	extra := frozenTestWorkload(rng, 1).Items[0]
	w.Add(extra.Q, 2)
	after := w.Frozen(MaskSWGO)
	if after == a {
		t.Fatal("Add did not invalidate the frozen cache")
	}
	if !after.HasKey(extra.Q.TemplateKey(MaskSWGO)) {
		t.Fatal("recomputed frozen vector misses the added template")
	}
	// The clone, taken before the Add, must still freeze to the old contents.
	cv := clone.Frozen(MaskSWGO)
	if cv.Len() != a.Len() {
		t.Fatalf("clone frozen has %d templates, want %d", cv.Len(), a.Len())
	}
	for i := range a.Keys {
		if cv.Keys[i] != a.Keys[i] || cv.Freqs[i] != a.Freqs[i] {
			t.Fatalf("clone frozen differs at %d", i)
		}
	}

	// SelfQuad is deterministic and cached.
	if s1, s2 := after.SelfQuad(), after.SelfQuad(); s1 != s2 {
		t.Fatalf("SelfQuad not stable: %g vs %g", s1, s2)
	}
}

// TestFrozenConcurrent hammers Frozen/FrozenSeparate/SelfQuad from many
// goroutines (run under -race in CI): all callers must observe equivalent
// vectors and identical self-terms.
func TestFrozenConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	w := frozenTestWorkload(rng, 40)

	ref := w.buildFrozen(MaskSWGO)
	refSelf := ref.SelfQuad()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var fv *FrozenVector
				switch (g + i) % 3 {
				case 0:
					fv = w.Frozen(MaskSWGO)
				case 1:
					fv = w.Frozen(MaskWhere)
				default:
					sv := w.FrozenSeparate()
					if sv.Len() == 0 {
						t.Error("empty separate vector")
					}
					sv.SelfQuad()
					continue
				}
				if fv.Len() == 0 {
					t.Error("empty frozen vector")
				}
				if (g+i)%3 == 0 {
					if got := fv.SelfQuad(); got != refSelf {
						t.Errorf("SelfQuad = %g, want %g", got, refSelf)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFrozenEmptyWorkload: freezing an empty workload yields empty vectors.
func TestFrozenEmptyWorkload(t *testing.T) {
	w := &Workload{}
	if fv := w.Frozen(MaskSWGO); fv.Len() != 0 {
		t.Fatalf("empty workload froze to %d templates", fv.Len())
	}
	if sv := w.FrozenSeparate(); sv.Len() != 0 {
		t.Fatalf("empty workload froze to %d separate templates", sv.Len())
	}
	if s := w.Frozen(MaskSWGO).SelfQuad(); s != 0 {
		t.Fatalf("empty self-term = %g", s)
	}
}
