package workload

import (
	"math/bits"
	"strconv"
	"strings"
)

// ColSet is a set of global column IDs, stored as a bitset. The zero value is
// the empty set. ColSet values are treated as immutable once shared; mutating
// methods have pointer receivers and the non-mutating operators return fresh
// sets.
type ColSet struct {
	words []uint64
}

// NewColSet returns the set containing the given column IDs.
func NewColSet(ids ...int) ColSet {
	var s ColSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *ColSet) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts a column ID. Negative IDs panic.
func (s *ColSet) Add(id int) {
	if id < 0 {
		panic("workload: negative column ID")
	}
	w := id / 64
	s.grow(w)
	s.words[w] |= 1 << uint(id%64)
}

// Remove deletes a column ID if present.
func (s *ColSet) Remove(id int) {
	if id < 0 {
		return
	}
	w := id / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(id%64)
	}
}

// Has reports whether the set contains id.
func (s ColSet) Has(id int) bool {
	if id < 0 {
		return false
	}
	w := id / 64
	return w < len(s.words) && s.words[w]&(1<<uint(id%64)) != 0
}

// Len returns the number of columns in the set.
func (s ColSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no columns.
func (s ColSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Union returns the set union of s and t.
func (s ColSet) Union(t ColSet) ColSet {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return ColSet{words: out}
}

// Intersect returns the set intersection of s and t.
func (s ColSet) Intersect(t ColSet) ColSet {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = s.words[i] & t.words[i]
	}
	return ColSet{words: out}
}

// Minus returns s with all members of t removed.
func (s ColSet) Minus(t ColSet) ColSet {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	for i := range out {
		if i < len(t.words) {
			out[i] &^= t.words[i]
		}
	}
	return ColSet{words: out}
}

// Contains reports whether every column of t is in s.
func (s ColSet) Contains(t ColSet) bool {
	for i, w := range t.words {
		if w == 0 {
			continue
		}
		if i >= len(s.words) || s.words[i]&w != w {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same columns.
func (s ColSet) Equal(t ColSet) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Hamming returns the number of columns present in exactly one of s and t.
// This is the paper's Hamming distance between the binary representations of
// two queries (Section 5).
func (s ColSet) Hamming(t ColSet) int {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	n := 0
	for i, w := range short {
		n += bits.OnesCount64(long[i] ^ w)
	}
	for _, w := range long[len(short):] {
		n += bits.OnesCount64(w)
	}
	return n
}

// IDs returns the member column IDs in ascending order.
func (s ColSet) IDs() []int {
	ids := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			ids = append(ids, wi*64+b)
			w &^= 1 << uint(b)
		}
	}
	return ids
}

// Clone returns an independent copy of s.
func (s ColSet) Clone() ColSet {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return ColSet{words: out}
}

// Key returns a canonical string identity for the set, suitable as a map key.
func (s ColSet) Key() string {
	// Trim trailing zero words so logically equal sets share a key.
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	var b strings.Builder
	for i := 0; i < end; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(s.words[i], 16))
	}
	return b.String()
}

// String renders the set as a sorted ID list, e.g. "{1,5,9}".
func (s ColSet) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
