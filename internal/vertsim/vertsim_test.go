package vertsim

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cliffguard/internal/datagen"
	"cliffguard/internal/designer"
	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.TableDef{
		{
			Name: "f", Fact: true, Rows: 1_000_000,
			Columns: []schema.ColumnDef{
				{Name: "a", Type: schema.Int64, Cardinality: 1000},
				{Name: "b", Type: schema.Int64, Cardinality: 100},
				{Name: "c", Type: schema.Int64, Cardinality: 10},
				{Name: "d", Type: schema.Float64, Cardinality: 10_000},
				{Name: "e", Type: schema.String, Cardinality: 50},
				{Name: "g", Type: schema.Int64, Cardinality: 365},
			},
		},
		{
			Name: "dim", Rows: 100,
			Columns: []schema.ColumnDef{
				{Name: "k", Type: schema.Int64, Cardinality: 100},
			},
		},
	})
}

func q(spec *workload.Spec) *workload.Query {
	return workload.FromSpec(workload.NextID(), time.Time{}, spec)
}

func TestNewProjectionValidation(t *testing.T) {
	s := testSchema()
	if _, err := NewProjection(s, "nope", []int{0}, nil); err == nil {
		t.Error("unknown anchor should fail")
	}
	if _, err := NewProjection(s, "f", nil, nil); err == nil {
		t.Error("empty projection should fail")
	}
	if _, err := NewProjection(s, "f", []int{999}, nil); err == nil {
		t.Error("invalid column should fail")
	}
	if _, err := NewProjection(s, "f", []int{6}, nil); err == nil {
		t.Error("column from another table should fail")
	}
	if _, err := NewProjection(s, "f", []int{0}, []workload.OrderCol{{Col: 1}}); err == nil {
		t.Error("sort column outside projection should fail")
	}
	// Duplicates are deduplicated, not rejected.
	p, err := NewProjection(s, "f", []int{0, 0, 1}, []workload.OrderCol{{Col: 0}, {Col: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cols.Len() != 2 || len(p.SortCols) != 1 {
		t.Errorf("dedup failed: %v / %v", p.Cols, p.SortCols)
	}
}

func TestProjectionIdentityAndSize(t *testing.T) {
	s := testSchema()
	p1, _ := NewProjection(s, "f", []int{0, 1}, []workload.OrderCol{{Col: 0}})
	p2, _ := NewProjection(s, "f", []int{1, 0}, []workload.OrderCol{{Col: 0}})
	p3, _ := NewProjection(s, "f", []int{0, 1}, []workload.OrderCol{{Col: 1}})
	if p1.Key() != p2.Key() {
		t.Error("column order should not change identity")
	}
	if p1.Key() == p3.Key() {
		t.Error("sort order must change identity")
	}
	// Sorted projections are compressed; unsorted are not.
	u, _ := NewProjection(s, "f", []int{0, 1}, nil)
	if p1.SizeBytes() >= u.SizeBytes() {
		t.Errorf("sorted size %d should be below unsorted %d", p1.SizeBytes(), u.SizeBytes())
	}
	// 2 int64 cols * 1M rows * compression.
	want := int64(float64(2*8*1_000_000) * sortedCompression)
	if p1.SizeBytes() != want {
		t.Errorf("size = %d, want %d", p1.SizeBytes(), want)
	}
}

func TestCostModelBasics(t *testing.T) {
	s := testSchema()
	db := Open(s)

	query := q(&workload.Spec{
		Table:      "f",
		SelectCols: []int{0, 3},
		Preds:      []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 5, Hi: 5, Sel: 0.01}},
	})
	base, err := db.Cost(context.Background(), query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base <= fixedOverheadMs {
		t.Fatalf("base cost %g too low", base)
	}

	// A covering projection sorted by the predicate column is much cheaper.
	proj, _ := NewProjection(s, "f", []int{0, 1, 3}, []workload.OrderCol{{Col: 1}})
	fast, err := db.Cost(context.Background(), query, designer.NewDesign(proj))
	if err != nil {
		t.Fatal(err)
	}
	if fast >= base/10 {
		t.Fatalf("sorted covering projection: %g, want < base/10 (%g)", fast, base/10)
	}

	// A non-covering projection does not help.
	narrow, _ := NewProjection(s, "f", []int{0, 1}, []workload.OrderCol{{Col: 1}})
	same, err := db.Cost(context.Background(), query, designer.NewDesign(narrow))
	if err != nil {
		t.Fatal(err)
	}
	if same != base {
		t.Fatalf("non-covering projection changed cost: %g vs %g", same, base)
	}

	// A covering projection with an unrelated sort order gives only the
	// compression advantage.
	unrelated, _ := NewProjection(s, "f", []int{0, 1, 3}, []workload.OrderCol{{Col: 0}})
	mid, err := db.Cost(context.Background(), query, designer.NewDesign(unrelated))
	if err != nil {
		t.Fatal(err)
	}
	if mid >= base || mid <= fast {
		t.Fatalf("coverage-only cost %g should sit between %g and %g", mid, fast, base)
	}
}

func TestCostModelMonotoneInDesign(t *testing.T) {
	s := testSchema()
	db := Open(s)
	rng := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := &workload.Spec{Table: "f"}
		for i := 0; i < 1+r.Intn(3); i++ {
			spec.SelectCols = append(spec.SelectCols, r.Intn(6))
		}
		spec.Preds = append(spec.Preds, workload.Pred{
			Col: r.Intn(6), Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.01})
		query := q(spec)

		base, err := db.Cost(context.Background(), query, nil)
		if err != nil {
			return false
		}
		// Adding any valid structure never increases cost.
		cols := []int{r.Intn(6), r.Intn(6), r.Intn(6)}
		proj, err := NewProjection(s, "f", cols, []workload.OrderCol{{Col: cols[0]}})
		if err != nil {
			return false
		}
		withProj, err := db.Cost(context.Background(), query, designer.NewDesign(proj))
		if err != nil {
			return false
		}
		return withProj <= base
	}
	_ = rng
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCostUnsupportedQueries(t *testing.T) {
	db := Open(testSchema())
	cases := []*workload.Query{
		{ID: 1},                          // no spec
		q(&workload.Spec{Table: "nope"}), // unknown table
		q(&workload.Spec{Table: "f", SelectCols: []int{6}}), // column of dim
	}
	for i, query := range cases {
		if _, err := db.Cost(context.Background(), query, nil); !errors.Is(err, designer.ErrUnsupported) {
			t.Errorf("case %d: err = %v, want ErrUnsupported", i, err)
		}
	}
}

func TestGroupByAndOrderCostEffects(t *testing.T) {
	s := testSchema()
	db := Open(s)
	plain := q(&workload.Spec{Table: "f", SelectCols: []int{0}})
	grouped := q(&workload.Spec{Table: "f", SelectCols: []int{2}, GroupBy: []int{2},
		Aggs: []workload.Agg{{Fn: workload.Count, Col: -1}}})
	cPlain, _ := db.Cost(context.Background(), plain, nil)
	cGrouped, _ := db.Cost(context.Background(), grouped, nil)
	if cGrouped <= cPlain-1 { // grouping adds aggregation cost over same scan width? widths differ; just check both positive
		t.Logf("plain=%g grouped=%g", cPlain, cGrouped)
	}

	// Streaming aggregation discount: group-by matching the sort prefix.
	proj, _ := NewProjection(s, "f", []int{2}, []workload.OrderCol{{Col: 2}})
	cStream, _ := db.Cost(context.Background(), grouped, designer.NewDesign(proj))
	if cStream >= cGrouped {
		t.Errorf("sort-streamed group-by %g should beat hash aggregation %g", cStream, cGrouped)
	}

	// Explicit sort cost appears when ORDER BY is unsatisfied.
	sorted := q(&workload.Spec{Table: "f", SelectCols: []int{0},
		OrderBy: []workload.OrderCol{{Col: 0}}})
	cSorted, _ := db.Cost(context.Background(), sorted, nil)
	if cSorted <= cPlain {
		t.Errorf("unsatisfied ORDER BY should cost extra: %g vs %g", cSorted, cPlain)
	}
	// ...and disappears when the projection delivers the order.
	op, _ := NewProjection(s, "f", []int{0}, []workload.OrderCol{{Col: 0}})
	cDelivered, _ := db.Cost(context.Background(), sorted, designer.NewDesign(op))
	if cDelivered >= cSorted {
		t.Errorf("order-satisfying projection should avoid the sort: %g vs %g", cDelivered, cSorted)
	}
}

// executor tests ------------------------------------------------------------

func execSchema() *schema.Schema {
	return schema.MustNew([]schema.TableDef{{
		Name: "f", Fact: true, Rows: 5_000,
		Columns: []schema.ColumnDef{
			{Name: "a", Type: schema.Int64, Cardinality: 50},
			{Name: "b", Type: schema.Int64, Cardinality: 10},
			{Name: "c", Type: schema.Int64, Cardinality: 500},
			{Name: "d", Type: schema.Int64, Cardinality: 5},
		},
	}})
}

// canonical sorts rows for order-insensitive comparison.
func canonical(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a.Key) && k < len(b.Key); k++ {
			if a.Key[k] != b.Key[k] {
				return a.Key[k] < b.Key[k]
			}
		}
		return len(a.Key) < len(b.Key)
	})
	return out
}

func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Aggs) != len(b[i].Aggs) {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
		for j := range a[i].Aggs {
			if a[i].Aggs[j] != b[i].Aggs[j] {
				return false
			}
		}
	}
	return true
}

func TestExecutorRequiresData(t *testing.T) {
	db := Open(execSchema())
	query := q(&workload.Spec{Table: "f", SelectCols: []int{0}})
	if _, err := db.Execute(query, nil); err == nil {
		t.Fatal("Execute without data should fail")
	}
}

// TestExecutorPathAgreement is the executor's core property: the projection
// path must return exactly the same result as the super-projection scan, for
// random queries and random projections.
func TestExecutorPathAgreement(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := &workload.Spec{Table: "f"}
		grouped := r.Intn(2) == 0
		if grouped {
			spec.GroupBy = []int{r.Intn(4)}
			spec.SelectCols = append(spec.SelectCols, spec.GroupBy[0])
			spec.Aggs = []workload.Agg{
				{Fn: workload.Count, Col: -1},
				{Fn: workload.Sum, Col: r.Intn(4)},
				{Fn: workload.Min, Col: r.Intn(4)},
				{Fn: workload.Max, Col: r.Intn(4)},
			}
		} else {
			spec.SelectCols = []int{r.Intn(4), r.Intn(4)}
		}
		predCol := r.Intn(4)
		card := s.Column(predCol).Cardinality
		if r.Intn(2) == 0 {
			v := r.Int63n(card)
			spec.Preds = append(spec.Preds, workload.Pred{
				Col: predCol, Op: workload.Eq, Lo: v, Hi: v, Sel: 1 / float64(card)})
		} else {
			lo := r.Int63n(card)
			hi := lo + r.Int63n(card-lo)
			spec.Preds = append(spec.Preds, workload.Pred{
				Col: predCol, Op: workload.Between, Lo: lo, Hi: hi,
				Sel: float64(hi-lo+1) / float64(card)})
		}
		query := q(spec)

		// Projection over all referenced columns, sorted by the pred column.
		proj, err := NewProjection(s, "f", spec.ReferencedCols(),
			[]workload.OrderCol{{Col: predCol}})
		if err != nil {
			return false
		}
		scan, err := db.Execute(query, nil)
		if err != nil {
			return false
		}
		fast, err := db.Execute(query, designer.NewDesign(proj))
		if err != nil {
			return false
		}
		if fast.Projection == "" {
			return false // the optimizer should have chosen the projection
		}
		if fast.ScannedRows > scan.ScannedRows {
			return false // narrowed scan must not read more
		}
		return rowsEqual(canonical(scan.Rows), canonical(fast.Rows))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExecutorOrderByAndLimit(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	query := q(&workload.Spec{
		Table:      "f",
		SelectCols: []int{2},
		Preds:      []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 3, Hi: 3, Sel: 0.1}},
		OrderBy:    []workload.OrderCol{{Col: 2, Desc: true}},
		Limit:      10,
	})
	res, err := db.Execute(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 10 {
		t.Fatalf("limit not applied: %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].Key[0] < res.Rows[i].Key[0] {
			t.Fatal("DESC order violated")
		}
	}
}

func TestExecutorAggregates(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	// Global aggregate (no group by): COUNT(*) equals matched rows.
	query := q(&workload.Spec{
		Table: "f",
		Aggs:  []workload.Agg{{Fn: workload.Count, Col: -1}, {Fn: workload.Avg, Col: 2}},
		Preds: []workload.Pred{{Col: 3, Op: workload.Eq, Lo: 0, Hi: 0, Sel: 0.2}},
	})
	res, err := db.Execute(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("global aggregate returned %d rows", len(res.Rows))
	}
	count := res.Rows[0].Aggs[0]
	// Recompute by hand.
	var want float64
	var sum float64
	col3 := data.Column(3)
	col2 := data.Column(2)
	for i := 0; i < data.Rows("f"); i++ {
		if col3[i] == 0 {
			want++
			sum += float64(col2[i])
		}
	}
	if count != want {
		t.Fatalf("COUNT = %g, want %g", count, want)
	}
	if want > 0 {
		avg := res.Rows[0].Aggs[1]
		if avg != sum/want {
			t.Fatalf("AVG = %g, want %g", avg, sum/want)
		}
	}
}

func TestExecutorEstimatorRankAgreement(t *testing.T) {
	// The estimator's path choice should correspond to fewer scanned rows in
	// the executor: build two projections, one sort-matched, one not, and
	// check the chosen path is the cheaper-to-execute one.
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	query := q(&workload.Spec{
		Table:      "f",
		SelectCols: []int{0, 2},
		Preds:      []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 42, Hi: 42, Sel: 1.0 / 500}},
	})
	good, _ := NewProjection(s, "f", []int{0, 2}, []workload.OrderCol{{Col: 2}})
	bad, _ := NewProjection(s, "f", []int{0, 2}, []workload.OrderCol{{Col: 0}})
	design := designer.NewDesign(bad, good)

	res, err := db.Execute(query, design)
	if err != nil {
		t.Fatal(err)
	}
	if res.Projection != good.Key() {
		t.Fatalf("optimizer chose %q, want sort-matched %q", res.Projection, good.Key())
	}
	scan, _ := db.Execute(query, nil)
	if res.ScannedRows >= scan.ScannedRows {
		t.Fatalf("chosen path scanned %d rows, full scan %d", res.ScannedRows, scan.ScannedRows)
	}
}

// designer tests ------------------------------------------------------------

func TestDesignerRespectsbudget(t *testing.T) {
	s := testSchema()
	db := Open(s)
	var queries []*workload.Query
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		spec := &workload.Spec{Table: "f",
			SelectCols: []int{rng.Intn(6), rng.Intn(6)},
			Preds: []workload.Pred{{Col: rng.Intn(6), Op: workload.Eq,
				Lo: 1, Hi: 1, Sel: 0.01}}}
		queries = append(queries, q(spec))
	}
	w := workload.New(queries...)

	budget := int64(20) << 20
	d := NewDesigner(db, budget)
	design, err := d.Design(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if design.SizeBytes() > budget {
		t.Fatalf("design size %d exceeds budget %d", design.SizeBytes(), budget)
	}
	// The design must actually help the workload.
	before, _ := designer.WorkloadCost(context.Background(), db, w, nil)
	after, _ := designer.WorkloadCost(context.Background(), db, w, design)
	if after >= before {
		t.Fatalf("design did not improve workload: %g -> %g", before, after)
	}
}

func TestDesignerZeroBudget(t *testing.T) {
	s := testSchema()
	db := Open(s)
	w := workload.New(q(&workload.Spec{Table: "f", SelectCols: []int{0}}))
	d := NewDesigner(db, 0)
	design, err := d.Design(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if design.Len() != 0 {
		t.Fatalf("zero budget produced %d structures", design.Len())
	}
}

func TestDesignerSkipsUnsupportedQueries(t *testing.T) {
	s := testSchema()
	db := Open(s)
	ok := q(&workload.Spec{Table: "f", SelectCols: []int{0},
		Preds: []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.01}}})
	bad := q(&workload.Spec{Table: "nope", SelectCols: []int{0}})
	w := workload.New(ok, bad)
	d := NewDesigner(db, 1<<30)
	// Candidates skip the unsupported query; GreedySelect would error on it,
	// so Design must be called with supported queries only. The designer's
	// candidate generation must not panic on the bad one.
	cands := d.Candidates(w)
	if len(cands) == 0 {
		t.Fatal("no candidates for the supported query")
	}
	for _, c := range cands {
		if c.(*Projection).Anchor != "f" {
			t.Fatal("candidate for unsupported table")
		}
	}
}

func TestCandidatesCoverPerturbedFamilies(t *testing.T) {
	// A base template plus near-duplicate variants must produce a union
	// candidate that covers all of them (the hedging mechanism CliffGuard
	// relies on).
	s := testSchema()
	db := Open(s)
	// A one-column flip on a >=5-column template keeps >=83% containment,
	// which is what lets variants agglomerate (families of very small
	// templates intentionally do not cluster).
	base := q(&workload.Spec{Table: "f", SelectCols: []int{0, 1, 3, 5},
		Preds: []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.1}}})
	v1 := q(&workload.Spec{Table: "f", SelectCols: []int{0, 1, 3, 5, 4},
		Preds: []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.1}}})
	v2 := q(&workload.Spec{Table: "f", SelectCols: []int{0, 1, 3, 4, 5},
		Preds: []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.1},
			{Col: 0, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.2}}})
	w := workload.New(base, v1, v2)

	d := NewDesigner(db, 1<<40)
	cands := d.Candidates(w)
	union := workload.NewColSet(0, 1, 2, 3, 4, 5)
	found := false
	for _, c := range cands {
		if c.(*Projection).Cols.Contains(union) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no union candidate covering the whole family")
	}
}

func TestCostConcurrentAccess(t *testing.T) {
	// The memoizing cost model is shared across CliffGuard's evaluations;
	// concurrent use must be safe.
	s := testSchema()
	db := Open(s)
	proj, _ := NewProjection(s, "f", []int{0, 1, 3}, []workload.OrderCol{{Col: 1}})
	design := designer.NewDesign(proj)
	queries := make([]*workload.Query, 16)
	for i := range queries {
		queries[i] = q(&workload.Spec{Table: "f", SelectCols: []int{i % 6},
			Preds: []workload.Pred{{Col: (i + 1) % 6, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.01}}})
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Offset per goroutine so different goroutines race on the
				// same (query, path) pairs from different starting points.
				if _, err := db.Cost(context.Background(), queries[(i+g)%len(queries)], design); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDeploy(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)
	p1, _ := NewProjection(s, "f", []int{0, 1}, []workload.OrderCol{{Col: 0}})
	p2, _ := NewProjection(s, "f", []int{2, 3}, []workload.OrderCol{{Col: 2}})
	d := designer.NewDesign(p1, p2)

	ms, err := db.Deploy(d)
	if err != nil {
		t.Fatal(err)
	}
	if ms <= 0 {
		t.Fatal("deployment cost should be positive")
	}
	// After deployment the permutations exist; execution uses them directly.
	query := q(&workload.Spec{Table: "f", SelectCols: []int{0},
		Preds: []workload.Pred{{Col: 0, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.02}}})
	res, err := db.Execute(query, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Projection == "" {
		t.Fatal("deployed projection not chosen")
	}
	// Nil design deploys as a no-op.
	if ms, err := db.Deploy(nil); err != nil || ms != 0 {
		t.Fatalf("nil deploy = %g, %v", ms, err)
	}

	// At modeled warehouse scale, deployment dwarfs a single sort-matched
	// query (the Appendix A.4 relationship). Cost-model-only DB suffices.
	big := testSchema()
	bdb := Open(big)
	bp, _ := NewProjection(big, "f", []int{0, 1, 3}, []workload.OrderCol{{Col: 1}})
	bq := q(&workload.Spec{Table: "f", SelectCols: []int{0, 3},
		Preds: []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 5, Hi: 5, Sel: 0.01}}})
	bms, err := bdb.Deploy(designer.NewDesign(bp))
	if err != nil {
		t.Fatal(err)
	}
	bc, _ := bdb.Cost(context.Background(), bq, designer.NewDesign(bp))
	if bms <= 10*bc {
		t.Fatalf("deployment %g should dwarf a fast query %g", bms, bc)
	}
}

func TestExplain(t *testing.T) {
	s := testSchema()
	db := Open(s)
	query := q(&workload.Spec{
		Table:      "f",
		SelectCols: []int{2},
		GroupBy:    []int{2},
		Aggs:       []workload.Agg{{Fn: workload.Count, Col: -1}},
		Preds:      []workload.Pred{{Col: 1, Op: workload.Eq, Lo: 5, Hi: 5, Sel: 0.01}},
		OrderBy:    []workload.OrderCol{{Col: 2}},
		Limit:      10,
	})
	plan, err := db.Explain(query, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SCAN super-projection", "FILTER 1", "HASH GROUP BY", "SORT", "LIMIT 10"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	proj, _ := NewProjection(s, "f", []int{1, 2}, []workload.OrderCol{{Col: 1}, {Col: 2}})
	plan, err = db.Explain(query, designer.NewDesign(proj))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sort-prefix pruning") {
		t.Errorf("projection plan missing pruning:\n%s", plan)
	}
	if _, err := db.Explain(&workload.Query{}, nil); err == nil {
		t.Error("unsupported query should fail")
	}
}
