package vertsim

import (
	"context"
	"fmt"
	"math"
	"sync"

	"cliffguard/internal/costcache"
	"cliffguard/internal/datagen"
	"cliffguard/internal/designer"
	"cliffguard/internal/obs"
	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

// Cost-model constants, in milliseconds-producing units. They are tuned so
// that full scans of the warehouse fact tables land in the multi-second
// range and covered, sort-matched queries land in the tens of milliseconds —
// the latency regime of the paper's Figures 7-9.
const (
	// scanBytesPerMs is the modeled sequential scan rate (40 MB/s).
	scanBytesPerMs = 40_000.0
	// aggRowsPerMs is the hash-aggregation throughput.
	aggRowsPerMs = 8_000.0
	// sortRowFactor divides rows*log2(rows) for explicit sorts.
	sortRowFactor = 150_000.0
	// fixedOverheadMs models planning and dispatch per query.
	fixedOverheadMs = 30.0
	// scanCompression is the scan-rate advantage of reading a sorted,
	// RLE-encoded projection (storage compression is stronger, see
	// sortedCompression in projection.go).
	scanCompression = 0.9
)

// DB is a simulated columnar database instance: a schema, an optional
// physical dataset (for the executor), and a memoizing what-if cost model.
// DB implements designer.CostModel. The memo cache is sharded, so the cost
// model is safe (and scalable) under CliffGuard's parallel neighborhood
// evaluation.
type DB struct {
	Schema *schema.Schema
	Data   *datagen.Dataset // nil means cost-model only

	memo *costcache.Cache // per-(query, path) cost
	met  *obs.Metrics     // nil disables instrumentation

	sortedMu sync.Mutex
	sorted   map[string][]int32 // projection key -> row permutation (executor)
}

// Instrument attaches a metrics registry: Cost invocations are counted and
// the memo cache's hit/miss stats are registered under "vertsim". Call it
// before sharing the DB across goroutines.
func (db *DB) Instrument(m *obs.Metrics) {
	db.met = m
	m.RegisterCache("vertsim", db.memo.Stats)
}

// Open returns a cost-model-only DB over the schema.
func Open(s *schema.Schema) *DB {
	return &DB{
		Schema: s,
		memo:   costcache.New(),
		sorted: make(map[string][]int32),
	}
}

// OpenWithData returns a DB whose executor runs against the dataset.
func OpenWithData(data *datagen.Dataset) *DB {
	db := Open(data.Schema)
	db.Data = data
	return db
}

// Cost implements designer.CostModel: the estimated latency (ms) of q under
// design d, using the cheapest applicable access path (a covering projection
// or the super-projection). A cancelled ctx aborts with ctx.Err() before any
// estimation work.
func (db *DB) Cost(ctx context.Context, q *workload.Query, d *designer.Design) (float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if db.met != nil {
		db.met.CostModelCalls.Inc()
	}
	if err := db.check(q); err != nil {
		return 0, err
	}
	best := db.pathCost(q, nil) // super-projection
	if d != nil {
		for _, s := range d.Structures {
			p, ok := s.(*Projection)
			if !ok || p.Anchor != q.Spec.Table {
				continue
			}
			if !p.Covers(refCols(q)) {
				continue
			}
			if c := db.pathCost(q, p); c < best {
				best = c
			}
		}
	}
	return best, nil
}

// BestPath returns the chosen projection (nil for the super-projection) and
// its estimated cost. The executor uses it to run the same plan the
// estimator picked.
func (db *DB) BestPath(q *workload.Query, d *designer.Design) (*Projection, float64, error) {
	if err := db.check(q); err != nil {
		return nil, 0, err
	}
	var bestP *Projection
	best := db.pathCost(q, nil)
	if d != nil {
		for _, s := range d.Structures {
			p, ok := s.(*Projection)
			if !ok || p.Anchor != q.Spec.Table || !p.Covers(refCols(q)) {
				continue
			}
			if c := db.pathCost(q, p); c < best {
				best, bestP = c, p
			}
		}
	}
	return bestP, best, nil
}

// check validates that the query is within the simulator's costable subset:
// a spec over a single known anchor table whose referenced columns all
// belong to that table.
func (db *DB) check(q *workload.Query) error {
	if q == nil || q.Spec == nil {
		return fmt.Errorf("vertsim: query without spec: %w", designer.ErrUnsupported)
	}
	if _, ok := db.Schema.Table(q.Spec.Table); !ok {
		return fmt.Errorf("vertsim: unknown table %q: %w", q.Spec.Table, designer.ErrUnsupported)
	}
	for _, c := range q.Spec.ReferencedCols() {
		if !db.Schema.ValidID(c) {
			return fmt.Errorf("vertsim: invalid column %d: %w", c, designer.ErrUnsupported)
		}
		if db.Schema.Column(c).Table != q.Spec.Table {
			return fmt.Errorf("vertsim: column %s outside anchor %q: %w",
				db.Schema.Column(c).Qualified(), q.Spec.Table, designer.ErrUnsupported)
		}
	}
	return nil
}

func refCols(q *workload.Query) workload.ColSet {
	var set workload.ColSet
	for _, c := range q.Spec.ReferencedCols() {
		set.Add(c)
	}
	return set
}

// pathCost estimates latency of q via projection p (nil = super-projection),
// memoized per (query, path) pair in the sharded cache.
func (db *DB) pathCost(q *workload.Query, p *Projection) float64 {
	pathKey := ""
	if p != nil {
		pathKey = p.Key()
	}
	return db.memo.GetOrCompute(q, pathKey, func() float64 {
		return db.computePathCost(q, p)
	})
}

// computePathCost is the actual cost model.
//
//	scan  = rowsScanned * referencedWidth / scanRate
//	agg   = outputRows / aggRate            (if grouped)
//	sort  = outRows*log2(outRows)/sortRate  (if ORDER BY unsatisfied)
//
// rowsScanned shrinks by the selectivity of predicates matching the
// projection's sort-key prefix: equalities extend the usable prefix, the
// first range predicate uses it and stops, and the super-projection (no sort
// order) always scans everything.
func (db *DB) computePathCost(q *workload.Query, p *Projection) float64 {
	t, _ := db.Schema.Table(q.Spec.Table)
	rows := float64(t.Rows)

	var width float64
	for _, c := range q.Spec.ReferencedCols() {
		width += float64(db.Schema.Column(c).Type.Width())
	}

	prefixSel := 1.0
	var sortCols []workload.OrderCol
	compression := 1.0 // super-projection: unsorted, no run-length encoding
	if p != nil {
		sortCols = p.SortCols
		if len(sortCols) > 0 {
			// Sorted projections scan somewhat compressed data; the real win
			// comes from sort-prefix pruning, not from mere coverage.
			compression = scanCompression
		}
	}
	for _, oc := range sortCols {
		pred, ok := predOn(q.Spec.Preds, oc.Col)
		if !ok {
			break
		}
		prefixSel *= clampSel(pred.Sel)
		if pred.Op != workload.Eq {
			break // a range consumes the prefix
		}
	}

	totalSel := 1.0
	for _, pred := range q.Spec.Preds {
		totalSel *= clampSel(pred.Sel)
	}

	rowsScanned := math.Max(rows*prefixSel, 1)
	outRows := math.Max(rows*totalSel, 1)

	cost := fixedOverheadMs
	cost += rowsScanned * width * compression / scanBytesPerMs

	if len(q.Spec.GroupBy) > 0 {
		aggCost := outRows / aggRowsPerMs
		if groupBySortStreamed(q.Spec, sortCols) {
			// Rows arrive clustered by the grouping key: streaming (one-pass,
			// no hash table) aggregation.
			aggCost *= 0.1
		}
		cost += aggCost
		outRows = math.Min(outRows, db.groupEstimate(q.Spec.GroupBy))
	}
	if len(q.Spec.OrderBy) > 0 && !orderSatisfied(q.Spec, sortCols) {
		cost += outRows * math.Log2(outRows+2) / sortRowFactor
	}
	return cost
}

// groupBySortStreamed reports whether the path's sort key leads with the
// query's group-by columns (in any order), enabling one-pass aggregation.
func groupBySortStreamed(spec *workload.Spec, sortCols []workload.OrderCol) bool {
	if len(spec.GroupBy) == 0 || len(spec.GroupBy) > len(sortCols) {
		return false
	}
	gset := workload.NewColSet(spec.GroupBy...)
	for i := 0; i < len(spec.GroupBy); i++ {
		if !gset.Has(sortCols[i].Col) {
			return false
		}
	}
	return true
}

// groupEstimate caps the number of output groups by the product of group-by
// column cardinalities.
func (db *DB) groupEstimate(groupBy []int) float64 {
	est := 1.0
	for _, c := range groupBy {
		est *= float64(db.Schema.Column(c).Cardinality)
		if est > 1e12 {
			return 1e12
		}
	}
	return est
}

// orderSatisfied reports whether a path's sort order already delivers the
// query's ORDER BY (ORDER BY must be a direction-matching prefix of the sort
// key, and only when the query does not regroup rows).
func orderSatisfied(spec *workload.Spec, sortCols []workload.OrderCol) bool {
	if len(spec.GroupBy) > 0 {
		return false // aggregation destroys scan order
	}
	if len(spec.OrderBy) > len(sortCols) {
		return false
	}
	for i, oc := range spec.OrderBy {
		if sortCols[i].Col != oc.Col || sortCols[i].Desc != oc.Desc {
			return false
		}
	}
	return true
}

func predOn(preds []workload.Pred, col int) (workload.Pred, bool) {
	for _, p := range preds {
		if p.Col == col {
			return p, true
		}
	}
	return workload.Pred{}, false
}

func clampSel(s float64) float64 {
	if s <= 0 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// BaselineCost returns f(W, empty design): the workload's cost with no
// projections (the paper's NoDesign upper bound, also used by delta_latency).
func (db *DB) BaselineCost(w *workload.Workload) float64 {
	var total float64
	for _, it := range w.Items {
		c, err := db.Cost(context.Background(), it.Q, nil)
		if err != nil {
			continue
		}
		total += it.Weight * c
	}
	return total
}
