package vertsim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

// Row is one output row of the executor: the grouping/projection key values
// followed by aggregate values.
type Row struct {
	Key  []int64
	Aggs []float64
}

// Result is the output of executing a query.
type Result struct {
	Rows        []Row
	ScannedRows int     // physical rows read from the chosen path
	Projection  string  // key of the projection used; "" = super-projection
	EstimatedMs float64 // the cost model's estimate for the chosen path
}

// maxResultRows bounds non-aggregate result materialization.
const maxResultRows = 100_000

// Execute runs q under design d against the attached dataset, using the same
// access path the cost model would choose. It errors if the DB has no data.
func (db *DB) Execute(q *workload.Query, d *designer.Design) (*Result, error) {
	if db.Data == nil {
		return nil, fmt.Errorf("vertsim: Execute requires a dataset (use OpenWithData)")
	}
	proj, est, err := db.BestPath(q, d)
	if err != nil {
		return nil, err
	}
	res := &Result{EstimatedMs: est}
	if proj != nil {
		res.Projection = proj.Key()
	}

	spec := q.Spec
	nPhys := db.Data.Rows(spec.Table)

	// Candidate row positions: either all rows in natural order, or the
	// projection's sorted permutation, possibly narrowed by binary search on
	// the leading sort column.
	var positions []int32
	if proj == nil || len(proj.SortCols) == 0 {
		positions = naturalOrder(nPhys)
	} else {
		perm := db.permutation(proj, nPhys)
		positions = db.narrow(perm, proj, spec)
	}

	grouped := len(spec.GroupBy) > 0
	globalAgg := !grouped && len(spec.Aggs) > 0

	type aggState struct {
		key    []int64
		counts []float64
		sums   []float64
		mins   []float64
		maxs   []float64
		init   bool
	}
	newState := func(key []int64) *aggState {
		n := len(spec.Aggs)
		return &aggState{
			key:    key,
			counts: make([]float64, n),
			sums:   make([]float64, n),
			mins:   make([]float64, n),
			maxs:   make([]float64, n),
		}
	}
	groups := make(map[string]*aggState)
	var groupOrder []string
	var global *aggState
	if globalAgg {
		global = newState(nil)
	}

	// Output layout for plain (non-aggregate) queries: SelectCols followed
	// by any ORDER BY columns not already selected.
	outCols := append([]int(nil), spec.SelectCols...)
	for _, oc := range spec.OrderBy {
		found := false
		for _, c := range outCols {
			if c == oc.Col {
				found = true
				break
			}
		}
		if !found {
			outCols = append(outCols, oc.Col)
		}
	}

	var keyBuf strings.Builder
	for _, pos := range positions {
		res.ScannedRows++
		row := int(pos)
		if !db.rowMatches(spec, row) {
			continue
		}
		switch {
		case grouped:
			keyBuf.Reset()
			key := make([]int64, len(spec.GroupBy))
			for i, c := range spec.GroupBy {
				v := db.Data.Column(c)[row]
				key[i] = v
				keyBuf.WriteString(strconv.FormatInt(v, 10))
				keyBuf.WriteByte('|')
			}
			ks := keyBuf.String()
			st, ok := groups[ks]
			if !ok {
				st = newState(key)
				groups[ks] = st
				groupOrder = append(groupOrder, ks)
			}
			db.accumulate(spec, st.counts, st.sums, st.mins, st.maxs, &st.init, row)
		case globalAgg:
			db.accumulate(spec, global.counts, global.sums, global.mins, global.maxs, &global.init, row)
		default:
			if len(res.Rows) < maxResultRows {
				out := make([]int64, len(outCols))
				for i, c := range outCols {
					out[i] = db.Data.Column(c)[row]
				}
				res.Rows = append(res.Rows, Row{Key: out})
			}
		}
	}

	finish := func(st *aggState) []float64 {
		vals := make([]float64, len(spec.Aggs))
		for i, a := range spec.Aggs {
			switch a.Fn {
			case workload.Count:
				vals[i] = st.counts[i]
			case workload.Sum:
				vals[i] = st.sums[i]
			case workload.Avg:
				if st.counts[i] > 0 {
					vals[i] = st.sums[i] / st.counts[i]
				}
			case workload.Min:
				vals[i] = st.mins[i]
			case workload.Max:
				vals[i] = st.maxs[i]
			}
		}
		return vals
	}

	if grouped {
		for _, ks := range groupOrder {
			st := groups[ks]
			res.Rows = append(res.Rows, Row{Key: st.key, Aggs: finish(st)})
		}
	} else if globalAgg {
		res.Rows = append(res.Rows, Row{Aggs: finish(global)})
	}

	if len(spec.OrderBy) > 0 && !globalAgg {
		db.sortResult(spec, outCols, res)
	}
	if spec.Limit > 0 && len(res.Rows) > spec.Limit {
		res.Rows = res.Rows[:spec.Limit]
	}
	return res, nil
}

// rowMatches evaluates every predicate against the physical row.
func (db *DB) rowMatches(spec *workload.Spec, row int) bool {
	for _, p := range spec.Preds {
		v := db.Data.Column(p.Col)[row]
		switch p.Op {
		case workload.Eq:
			if v != p.Lo {
				return false
			}
		case workload.Lt:
			if v >= p.Lo {
				return false
			}
		case workload.Le:
			if v > p.Lo {
				return false
			}
		case workload.Gt:
			if v <= p.Lo {
				return false
			}
		case workload.Ge:
			if v < p.Lo {
				return false
			}
		case workload.Between:
			if v < p.Lo || v > p.Hi {
				return false
			}
		}
	}
	return true
}

func (db *DB) accumulate(spec *workload.Spec, counts, sums, mins, maxs []float64, init *bool, row int) {
	for i, a := range spec.Aggs {
		var v float64
		if a.Col >= 0 {
			v = float64(db.Data.Column(a.Col)[row])
		}
		counts[i]++
		sums[i] += v
		if !*init || v < mins[i] {
			mins[i] = v
		}
		if !*init || v > maxs[i] {
			maxs[i] = v
		}
	}
	*init = true
}

// sortResult orders res.Rows by the spec's ORDER BY keys. For grouped
// results only group-by columns can be sorted on; others are ignored (they
// are not well-defined per group in this simulator).
func (db *DB) sortResult(spec *workload.Spec, outCols []int, res *Result) {
	type keyIdx struct {
		idx  int
		desc bool
	}
	var keys []keyIdx
	if len(spec.GroupBy) > 0 {
		for _, oc := range spec.OrderBy {
			for i, g := range spec.GroupBy {
				if g == oc.Col {
					keys = append(keys, keyIdx{i, oc.Desc})
				}
			}
		}
	} else {
		for _, oc := range spec.OrderBy {
			for i, c := range outCols {
				if c == oc.Col {
					keys = append(keys, keyIdx{i, oc.Desc})
					break
				}
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		ra, rb := res.Rows[a], res.Rows[b]
		for _, k := range keys {
			va, vb := ra.Key[k.idx], rb.Key[k.idx]
			if va == vb {
				continue
			}
			if k.desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
}

func naturalOrder(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// permutation returns (building lazily) the projection's sorted row order
// over the physical data.
func (db *DB) permutation(p *Projection, nPhys int) []int32 {
	db.sortedMu.Lock()
	defer db.sortedMu.Unlock()
	if perm, ok := db.sorted[p.Key()]; ok && len(perm) == nPhys {
		return perm
	}
	perm := naturalOrder(nPhys)
	cols := make([][]int64, len(p.SortCols))
	for i, oc := range p.SortCols {
		cols[i] = db.Data.Column(oc.Col)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ia, ib := int(perm[a]), int(perm[b])
		for i, oc := range p.SortCols {
			va, vb := cols[i][ia], cols[i][ib]
			if va == vb {
				continue
			}
			if oc.Desc {
				return va > vb
			}
			return va < vb
		}
		return false
	})
	db.sorted[p.Key()] = perm
	return perm
}

// narrow restricts the scan range using a binary search on the leading sort
// column when the query filters it with an equality or closed range and the
// column is sorted ascending.
func (db *DB) narrow(perm []int32, p *Projection, spec *workload.Spec) []int32 {
	if len(p.SortCols) == 0 || p.SortCols[0].Desc {
		return perm
	}
	lead := p.SortCols[0].Col
	pred, ok := predOn(spec.Preds, lead)
	if !ok {
		return perm
	}
	var lo, hi int64
	switch pred.Op {
	case workload.Eq:
		lo, hi = pred.Lo, pred.Lo
	case workload.Between:
		lo, hi = pred.Lo, pred.Hi
	case workload.Le:
		lo, hi = -1<<62, pred.Lo
	case workload.Lt:
		lo, hi = -1<<62, pred.Lo-1
	case workload.Ge:
		lo, hi = pred.Lo, 1<<62
	case workload.Gt:
		lo, hi = pred.Lo+1, 1<<62
	default:
		return perm
	}
	col := db.Data.Column(lead)
	start := sort.Search(len(perm), func(i int) bool { return col[perm[i]] >= lo })
	end := sort.Search(len(perm), func(i int) bool { return col[perm[i]] > hi })
	return perm[start:end]
}

// Deploy eagerly materializes every projection in the design against the
// attached dataset (building the sorted row permutations the executor would
// otherwise build lazily) and returns the modeled deployment cost of the
// design at full modeled scale. The paper's Appendix A.4 observes that
// deployment dominates design search by an order of magnitude; this is the
// operation it is dominated by.
func (db *DB) Deploy(d *designer.Design) (modeledMs float64, err error) {
	if d == nil {
		return 0, nil
	}
	for _, s := range d.Structures {
		p, ok := s.(*Projection)
		if !ok {
			return 0, fmt.Errorf("vertsim: cannot deploy %T", s)
		}
		if db.Data != nil {
			db.permutation(p, db.Data.Rows(p.Anchor))
		}
		// Modeled cost: write out the projection's compressed bytes plus the
		// sort of its full modeled row count.
		t, ok := db.Schema.Table(p.Anchor)
		if !ok {
			return 0, fmt.Errorf("vertsim: unknown anchor %q", p.Anchor)
		}
		rows := float64(t.Rows)
		modeledMs += float64(p.SizeBytes()) / deployWriteBytesPerMs
		modeledMs += rows * math.Log2(rows+2) / sortRowFactor
	}
	return modeledMs, nil
}

// deployWriteBytesPerMs is the modeled projection build+write rate.
const deployWriteBytesPerMs = 20_000.0
