package vertsim

import (
	"context"
	"testing"
	"time"

	"cliffguard/internal/datagen"
	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

func benchQuery() *workload.Query {
	return workload.FromSpec(workload.NextID(), time.Time{}, &workload.Spec{
		Table:      "f",
		SelectCols: []int{1},
		GroupBy:    []int{1},
		Aggs:       []workload.Agg{{Fn: workload.Count, Col: -1}, {Fn: workload.Sum, Col: 2}},
		Preds:      []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 42, Hi: 42, Sel: 1.0 / 300}},
	})
}

// BenchmarkExecutorScan measures a full super-projection scan with
// aggregation over the physical data.
func BenchmarkExecutorScan(b *testing.B) {
	s := execSchema()
	db := OpenWithData(datagen.Generate(s, 5_000, 7))
	q := benchQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorProjection measures the sort-matched projection path
// (binary-search narrowing) on the same query.
func BenchmarkExecutorProjection(b *testing.B) {
	s := execSchema()
	db := OpenWithData(datagen.Generate(s, 5_000, 7))
	q := benchQuery()
	p, err := NewProjection(s, "f", []int{1, 2}, []workload.OrderCol{{Col: 2}})
	if err != nil {
		b.Fatal(err)
	}
	d := designer.NewDesign(p)
	if _, err := db.Execute(q, d); err != nil { // build the permutation once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWhatIfCost measures one un-memoized what-if estimate.
func BenchmarkWhatIfCost(b *testing.B) {
	s := testSchema()
	db := Open(s)
	p, _ := NewProjection(s, "f", []int{0, 1, 2, 3}, []workload.OrderCol{{Col: 1}})
	d := designer.NewDesign(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh query per iteration defeats the memo, measuring the model.
		q := benchQuery()
		if _, err := db.Cost(context.Background(), q, d); err != nil {
			b.Fatal(err)
		}
	}
}
