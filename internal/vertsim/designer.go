package vertsim

import (
	"context"
	"sort"

	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

// Designer is the DBD-style nominal designer (the paper's ExistingDesigner
// for Vertica): it proposes candidate sorted projections derived from the
// input workload's query templates and greedily selects the best
// benefit-per-byte set within the storage budget.
//
// Like its commercial counterpart it is purely nominal — candidates come
// only from queries it was shown, so designs overfit the input workload and
// fall off a cliff when future queries reference drifted column sets. That
// is exactly the behaviour CliffGuard exists to repair.
type Designer struct {
	DB     *DB
	Budget int64
	// MaxSortCols caps the sort-key length of generated candidates.
	MaxSortCols int
	// MaxCandidates caps the candidate pool (highest-weight templates win).
	MaxCandidates int
}

// NewDesigner returns a nominal designer with paper-scale defaults.
func NewDesigner(db *DB, budget int64) *Designer {
	return &Designer{DB: db, Budget: budget, MaxSortCols: 4, MaxCandidates: 640}
}

// Name implements designer.Designer.
func (d *Designer) Name() string { return "VerticaDBD" }

// Design implements designer.Designer: compress the workload to templates,
// generate per-template and merged candidates, then greedy-select.
func (d *Designer) Design(ctx context.Context, w *workload.Workload) (*designer.Design, error) {
	cw := designer.CompressByTemplate(w)
	cands := d.Candidates(cw)
	if d.DB.met != nil {
		d.DB.met.CandidatesGenerated.Add(uint64(len(cands)))
	}
	return designer.GreedySelect(ctx, d.DB, cw, cands, d.Budget)
}

// weightedQuery pairs a representative query with its template weight.
type weightedQuery struct {
	q      *workload.Query
	weight float64
}

// Candidates generates the candidate projection pool for a (compressed)
// workload: one or two tailored projections per template plus merged
// projections for strongly overlapping template pairs.
func (d *Designer) Candidates(cw *workload.Workload) []designer.Structure {
	cw = designer.CompressByTemplate(cw) // idempotent; callers may pass raw workloads
	var wqs []weightedQuery
	for _, it := range cw.Items {
		if d.DB.check(it.Q) != nil {
			continue
		}
		wqs = append(wqs, weightedQuery{it.Q, it.Weight})
	}
	sort.SliceStable(wqs, func(i, j int) bool { return wqs[i].weight > wqs[j].weight })
	maxCand := d.MaxCandidates
	if maxCand <= 0 {
		maxCand = 640
	}

	var out []designer.Structure
	seen := make(map[string]bool)
	add := func(p *Projection, err error) {
		if err != nil || p == nil || seen[p.Key()] {
			return
		}
		seen[p.Key()] = true
		out = append(out, p)
	}

	// Per-template candidates take at most half the pool: the cluster-union
	// candidates below are the ones that serve many templates at once, and
	// they must never be crowded out on template-rich (e.g. perturbed)
	// workloads.
	perTemplateCap := maxCand / 2
	for _, wq := range wqs {
		if len(out) >= perTemplateCap {
			break
		}
		spec := wq.q.Spec
		cols := spec.ReferencedCols()

		// Primary: sort by most-selective predicates, then group-by.
		add(NewProjection(d.DB.Schema, spec.Table, cols, d.sortKey(spec, false)))

		// Secondary for pure top-N queries: ORDER BY-leading sort order.
		if len(spec.OrderBy) > 0 && len(spec.GroupBy) == 0 {
			add(NewProjection(d.DB.Schema, spec.Table, cols, d.sortKey(spec, true)))
		}
	}

	// Merged candidates: agglomerate overlapping templates of the same table
	// into cluster-union projections. A cluster projection covers every
	// member (and, importantly, small variations of them), which is how the
	// designer stretches the budget across similar queries — and how a
	// workload that contains perturbed variants (CliffGuard's moved
	// workloads) turns into wider, drift-tolerant projections.
	type cluster struct {
		table    string
		cols     workload.ColSet
		members  int
		weight   float64
		predWt   map[int]float64 // pred column -> accumulated weight (eq boosted)
		groupWt  map[int]float64
		heaviest *workload.Spec
		second   *workload.Spec
	}
	var clusters []*cluster
	const maxClusterCols = 22
	for _, wq := range wqs {
		cols := refCols(wq.q)
		var best *cluster
		bestJ := 0.0
		for _, cl := range clusters {
			if cl.table != wq.q.Spec.Table {
				continue
			}
			union := cl.cols.Union(cols)
			if union.Len() > maxClusterCols {
				continue
			}
			// Containment rather than symmetric Jaccard: a template joins a
			// cluster when it is mostly inside the cluster's union already.
			// Perturbed variants of a template are ~90% inside its cluster, so
			// they keep joining as the union widens; organically distinct
			// templates (sharing only their hot columns, typically 50-75%
			// containment) stay out. This mirrors how commercial designers
			// merge only near-duplicate queries.
			j := float64(cl.cols.Intersect(cols).Len()) / float64(cols.Len())
			if j >= 0.8 && j > bestJ {
				best, bestJ = cl, j
			}
		}
		if best == nil {
			best = &cluster{
				table:   wq.q.Spec.Table,
				cols:    cols,
				predWt:  make(map[int]float64),
				groupWt: make(map[int]float64),
			}
			clusters = append(clusters, best)
		} else {
			best.cols = best.cols.Union(cols)
		}
		best.members++
		best.weight += wq.weight
		// wqs is sorted by weight, so the first two members to join are the
		// cluster's heaviest.
		if best.heaviest == nil {
			best.heaviest = wq.q.Spec
		} else if best.second == nil {
			best.second = wq.q.Spec
		}
		for _, p := range wq.q.Spec.Preds {
			boost := 1.0
			if p.Op == workload.Eq {
				boost = 2.0 // equalities extend the usable sort prefix
			}
			best.predWt[p.Col] += wq.weight * boost / (p.Sel + 1e-6)
		}
		for _, g := range wq.q.Spec.GroupBy {
			best.groupWt[g] += wq.weight
		}
	}
	for _, cl := range clusters {
		// Only genuine families — three or more near-duplicate templates —
		// earn speculative union projections.
		if cl.members < 3 || len(out) >= maxCand {
			continue
		}
		// Sort key: the cluster's most valuable predicate columns (weight x
		// selectivity), then shared group-by columns.
		key := topCols(cl.predWt, d.maxSortCols())
		for _, g := range topCols(cl.groupWt, d.maxSortCols()-len(key)) {
			key = append(key, g)
		}
		var sortCols []workload.OrderCol
		for _, c := range key {
			sortCols = append(sortCols, workload.OrderCol{Col: c})
		}
		add(NewProjection(d.DB.Schema, cl.table, cl.cols.IDs(), sortCols))
		// Variants sorted for the heaviest members, preserving their ideal
		// plans inside the wider projection — Vertica's classic trick of
		// keeping several projections that differ only in sort order.
		if cl.heaviest != nil && len(out) < maxCand {
			add(NewProjection(d.DB.Schema, cl.table, cl.cols.IDs(), d.sortKey(cl.heaviest, false)))
		}
		if cl.second != nil && len(out) < maxCand {
			add(NewProjection(d.DB.Schema, cl.table, cl.cols.IDs(), d.sortKey(cl.second, false)))
		}
		// One variant per popular predicate column as the leading sort key:
		// members (and near-variants) filtering on that column get a pruned
		// scan no matter which other predicates they carry.
		base := topCols(cl.predWt, d.maxSortCols())
		for _, lead := range topCols(cl.predWt, 8) {
			if len(out) >= maxCand {
				break
			}
			variant := []workload.OrderCol{{Col: lead}}
			for _, c := range base {
				if c != lead && len(variant) < d.maxSortCols() {
					variant = append(variant, workload.OrderCol{Col: c})
				}
			}
			add(NewProjection(d.DB.Schema, cl.table, cl.cols.IDs(), variant))
		}
	}
	return out
}

func (d *Designer) maxSortCols() int {
	if d.MaxSortCols > 0 {
		return d.MaxSortCols
	}
	return 4
}

// topCols returns up to k map keys by descending weight (deterministic
// tie-break on column ID).
func topCols(wt map[int]float64, k int) []int {
	if k <= 0 {
		return nil
	}
	cols := make([]int, 0, len(wt))
	for c := range wt {
		cols = append(cols, c)
	}
	sort.SliceStable(cols, func(a, b int) bool {
		if wt[cols[a]] != wt[cols[b]] {
			return wt[cols[a]] > wt[cols[b]]
		}
		return cols[a] < cols[b]
	})
	if len(cols) > k {
		cols = cols[:k]
	}
	return cols
}

// sortKey derives a candidate sort order from a query spec. With
// orderFirst, the query's ORDER BY keys lead; otherwise predicates lead,
// most selective first (equalities before the terminating range), followed
// by group-by columns.
func (d *Designer) sortKey(spec *workload.Spec, orderFirst bool) []workload.OrderCol {
	maxLen := d.MaxSortCols
	if maxLen <= 0 {
		maxLen = 4
	}
	var key []workload.OrderCol
	used := make(map[int]bool)
	push := func(oc workload.OrderCol) {
		if len(key) < maxLen && !used[oc.Col] {
			used[oc.Col] = true
			key = append(key, oc)
		}
	}
	if orderFirst {
		for _, oc := range spec.OrderBy {
			push(oc)
		}
	}
	// Equality predicates first (they extend the usable prefix), then the
	// single most selective range predicate.
	preds := spec.SortPredsBySelectivity()
	for _, p := range preds {
		if p.Op == workload.Eq {
			push(workload.OrderCol{Col: p.Col})
		}
	}
	for _, p := range preds {
		if p.Op != workload.Eq {
			push(workload.OrderCol{Col: p.Col})
			break
		}
	}
	for _, c := range spec.GroupBy {
		push(workload.OrderCol{Col: c})
	}
	if !orderFirst {
		for _, oc := range spec.OrderBy {
			push(oc)
		}
	}
	return key
}
