package vertsim

import (
	"fmt"
	"math"
	"strings"

	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

// Explain renders the plan the optimizer would choose for q under design d:
// the access path, the estimated rows scanned and output, and the post-scan
// operators. It is the simulator's equivalent of EXPLAIN.
func (db *DB) Explain(q *workload.Query, d *designer.Design) (string, error) {
	proj, est, err := db.BestPath(q, d)
	if err != nil {
		return "", err
	}
	t, _ := db.Schema.Table(q.Spec.Table)
	rows := float64(t.Rows)

	prefixSel := 1.0
	var sortCols []workload.OrderCol
	if proj != nil {
		sortCols = proj.SortCols
		for _, oc := range sortCols {
			pred, ok := predOn(q.Spec.Preds, oc.Col)
			if !ok {
				break
			}
			prefixSel *= clampSel(pred.Sel)
			if pred.Op != workload.Eq {
				break
			}
		}
	}
	totalSel := 1.0
	for _, p := range q.Spec.Preds {
		totalSel *= clampSel(p.Sel)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s (est %.0f ms)\n", q, est)
	if proj == nil {
		fmt.Fprintf(&b, "  SCAN super-projection of %s: %.0f rows\n", q.Spec.Table, rows)
	} else {
		fmt.Fprintf(&b, "  SCAN %s\n", proj.Describe())
		fmt.Fprintf(&b, "    sort-prefix pruning: %.0f of %.0f rows\n",
			math.Max(rows*prefixSel, 1), rows)
	}
	if len(q.Spec.Preds) > 0 {
		fmt.Fprintf(&b, "  FILTER %d predicates: %.0f rows out\n",
			len(q.Spec.Preds), math.Max(rows*totalSel, 1))
	}
	if len(q.Spec.GroupBy) > 0 {
		mode := "HASH"
		if groupBySortStreamed(q.Spec, sortCols) {
			mode = "STREAMING"
		}
		fmt.Fprintf(&b, "  %s GROUP BY %d columns, %d aggregates\n",
			mode, len(q.Spec.GroupBy), len(q.Spec.Aggs))
	}
	if len(q.Spec.OrderBy) > 0 {
		if orderSatisfied(q.Spec, sortCols) {
			b.WriteString("  ORDER BY satisfied by the projection's sort order\n")
		} else {
			b.WriteString("  SORT for ORDER BY\n")
		}
	}
	if q.Spec.Limit > 0 {
		fmt.Fprintf(&b, "  LIMIT %d\n", q.Spec.Limit)
	}
	return b.String(), nil
}
