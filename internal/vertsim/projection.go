// Package vertsim is an in-memory columnar database simulator modeled on
// Vertica, the primary evaluation target of the CliffGuard paper. Its
// physical design objects are sorted projections: column subsets of an
// anchor table stored sorted by a key prefix. The package provides
//
//   - a what-if cost model (the "query optimizer's cost estimates" that the
//     paper's f(W, D) consults),
//   - a real executor over synthetic data (for calibration and examples), and
//   - a DBD-style greedy nominal designer (the paper's ExistingDesigner).
//
// The essential behaviour preserved from Vertica: a query that is fully
// covered by a projection whose sort order matches its predicates runs
// orders of magnitude faster than one that must fall back to scanning the
// super-projection — the performance cliff that CliffGuard guards against.
package vertsim

import (
	"fmt"
	"strings"

	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

// Projection is one sorted projection: a subset of an anchor table's
// columns, sorted by SortCols. It implements designer.Structure.
type Projection struct {
	Anchor   string
	Cols     workload.ColSet
	SortCols []workload.OrderCol

	key  string
	size int64
}

// sortedCompression models the storage saving of run-length encoding on the
// sorted key prefix of a projection.
const sortedCompression = 0.4

// NewProjection builds a projection over the given columns of anchor,
// sorted by sortCols (which must be members of cols). It validates against
// the schema and precomputes identity and size.
func NewProjection(s *schema.Schema, anchor string, cols []int, sortCols []workload.OrderCol) (*Projection, error) {
	t, ok := s.Table(anchor)
	if !ok {
		return nil, fmt.Errorf("vertsim: unknown anchor table %q", anchor)
	}
	var set workload.ColSet
	var width int64
	for _, c := range cols {
		if !s.ValidID(c) {
			return nil, fmt.Errorf("vertsim: invalid column ID %d", c)
		}
		col := s.Column(c)
		if col.Table != anchor {
			return nil, fmt.Errorf("vertsim: column %s does not belong to anchor %q", col.Qualified(), anchor)
		}
		if set.Has(c) {
			continue
		}
		set.Add(c)
		width += col.Type.Width()
	}
	if set.Empty() {
		return nil, fmt.Errorf("vertsim: projection on %q has no columns", anchor)
	}
	seen := make(map[int]bool, len(sortCols))
	dedup := make([]workload.OrderCol, 0, len(sortCols))
	for _, oc := range sortCols {
		if !set.Has(oc.Col) {
			return nil, fmt.Errorf("vertsim: sort column %d not in projection column set", oc.Col)
		}
		if seen[oc.Col] {
			continue
		}
		seen[oc.Col] = true
		dedup = append(dedup, oc)
	}
	p := &Projection{Anchor: anchor, Cols: set, SortCols: dedup}
	compression := 1.0
	if len(dedup) > 0 {
		compression = sortedCompression
	}
	p.size = int64(float64(t.Rows*width) * compression)
	var b strings.Builder
	b.WriteString("proj:")
	b.WriteString(anchor)
	b.WriteString(":")
	b.WriteString(set.Key())
	b.WriteString(":sort=")
	for i, oc := range dedup {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", oc.Col)
		if oc.Desc {
			b.WriteByte('-')
		}
	}
	p.key = b.String()
	return p, nil
}

// Key implements designer.Structure.
func (p *Projection) Key() string { return p.key }

// SizeBytes implements designer.Structure.
func (p *Projection) SizeBytes() int64 { return p.size }

// Describe implements designer.Structure.
func (p *Projection) Describe() string {
	sorts := make([]string, len(p.SortCols))
	for i, oc := range p.SortCols {
		dir := ""
		if oc.Desc {
			dir = " DESC"
		}
		sorts[i] = fmt.Sprintf("%d%s", oc.Col, dir)
	}
	return fmt.Sprintf("PROJECTION %s cols=%s order=(%s) size=%dMB",
		p.Anchor, p.Cols, strings.Join(sorts, ","), p.size/(1<<20))
}

// Covers reports whether the projection contains every column in need.
func (p *Projection) Covers(need workload.ColSet) bool { return p.Cols.Contains(need) }
