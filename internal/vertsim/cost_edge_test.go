package vertsim

import (
	"context"
	"testing"
	"time"

	"cliffguard/internal/datagen"
	"cliffguard/internal/designer"
	"cliffguard/internal/workload"
)

func edgeQuery(spec *workload.Spec) *workload.Query {
	return workload.FromSpec(workload.NextID(), time.Time{}, spec)
}

// TestPrefixSelectivitySemantics pins the sort-prefix rules: equalities
// extend the usable prefix, the first range predicate consumes it, and a gap
// in the prefix stops matching.
func TestPrefixSelectivitySemantics(t *testing.T) {
	s := testSchema()
	db := Open(s)

	eqA := workload.Pred{Col: 0, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.01}
	eqB := workload.Pred{Col: 1, Op: workload.Eq, Lo: 1, Hi: 1, Sel: 0.1}
	rangeB := workload.Pred{Col: 1, Op: workload.Between, Lo: 1, Hi: 10, Sel: 0.1}

	mk := func(preds ...workload.Pred) *workload.Query {
		return edgeQuery(&workload.Spec{Table: "f", SelectCols: []int{3}, Preds: preds})
	}
	proj := func(sort ...int) *Projection {
		var ocs []workload.OrderCol
		for _, c := range sort {
			ocs = append(ocs, workload.OrderCol{Col: c})
		}
		p, err := NewProjection(s, "f", []int{0, 1, 3}, ocs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	cost := func(q *workload.Query, p *Projection) float64 {
		c, err := db.Cost(context.Background(), q, designer.NewDesign(p))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Two equalities on sort (a,b): both prune.
	both := cost(mk(eqA, eqB), proj(0, 1))
	// Only the first equality prunes when the second pred is missing.
	first := cost(mk(eqA), proj(0, 1))
	if both >= first {
		t.Errorf("two-eq prefix %g should beat one-eq %g", both, first)
	}

	// A range on the second sort column still prunes (eq then range)...
	eqThenRange := cost(mk(eqA, rangeB), proj(0, 1))
	if eqThenRange >= first {
		t.Errorf("eq+range prefix %g should beat eq-only %g", eqThenRange, first)
	}
	// ...but a range on the FIRST sort column consumes the prefix: for the
	// same query, extending the sort key past the range column buys nothing.
	rangeFirstLong := cost(mk(rangeB, eqA), proj(1, 0))
	rangeFirstShort := cost(mk(rangeB, eqA), proj(1))
	if rangeFirstLong != rangeFirstShort {
		t.Errorf("range-first prefix should stop: %g vs %g", rangeFirstLong, rangeFirstShort)
	}

	// A predicate gap stops the prefix: sort (b,a) with only a pred on a.
	gap := cost(mk(eqA), proj(1, 0))
	matched := cost(mk(eqA), proj(0, 1))
	if gap <= matched {
		t.Errorf("gapped prefix %g should not beat matched prefix %g", gap, matched)
	}
}

func TestGroupEstimateCapsOutRows(t *testing.T) {
	s := testSchema()
	db := Open(s)
	// ORDER BY after GROUP BY sorts at most the number of groups, not the
	// filtered row count: a low-cardinality group-by bounds sort cost.
	lowCard := edgeQuery(&workload.Spec{
		Table: "f", SelectCols: []int{2}, GroupBy: []int{2},
		Aggs:    []workload.Agg{{Fn: workload.Count, Col: -1}},
		OrderBy: []workload.OrderCol{{Col: 2}},
	})
	highCard := edgeQuery(&workload.Spec{
		Table: "f", SelectCols: []int{0}, GroupBy: []int{0},
		Aggs:    []workload.Agg{{Fn: workload.Count, Col: -1}},
		OrderBy: []workload.OrderCol{{Col: 0}},
	})
	cLow, _ := db.Cost(context.Background(), lowCard, nil)
	cHigh, _ := db.Cost(context.Background(), highCard, nil)
	if cLow >= cHigh {
		t.Errorf("10-group sort %g should be cheaper than 1000-group sort %g", cLow, cHigh)
	}
}

func TestOrderSatisfiedRules(t *testing.T) {
	spec := &workload.Spec{
		OrderBy: []workload.OrderCol{{Col: 1}, {Col: 2, Desc: true}},
	}
	if !orderSatisfied(spec, []workload.OrderCol{{Col: 1}, {Col: 2, Desc: true}, {Col: 3}}) {
		t.Error("matching prefix should satisfy")
	}
	if orderSatisfied(spec, []workload.OrderCol{{Col: 1}, {Col: 2}}) {
		t.Error("direction mismatch should not satisfy")
	}
	if orderSatisfied(spec, []workload.OrderCol{{Col: 1}}) {
		t.Error("shorter sort key should not satisfy")
	}
	grouped := &workload.Spec{
		GroupBy: []int{1},
		OrderBy: []workload.OrderCol{{Col: 1}},
	}
	if orderSatisfied(grouped, []workload.OrderCol{{Col: 1}}) {
		t.Error("aggregation destroys scan order")
	}
}

func TestExecutorDescLeadingColumnFullScans(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	// Binary-search narrowing only applies to ascending leading columns; a
	// DESC leading sort still answers correctly via the full permutation.
	q := edgeQuery(&workload.Spec{
		Table:      "f",
		SelectCols: []int{0},
		Preds:      []workload.Pred{{Col: 2, Op: workload.Eq, Lo: 5, Hi: 5, Sel: 1.0 / 300}},
	})
	desc, err := NewProjection(s, "f", []int{0, 2}, []workload.OrderCol{{Col: 2, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := db.Execute(q, nil)
	got, err := db.Execute(q, designer.NewDesign(desc))
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(canonical(scan.Rows), canonical(got.Rows)) {
		t.Fatal("DESC-sorted projection returned wrong rows")
	}
}

func TestExecutorRangeOperatorsNarrow(t *testing.T) {
	s := execSchema()
	data := datagen.Generate(s, 5_000, 7)
	db := OpenWithData(data)

	proj, _ := NewProjection(s, "f", []int{0, 2}, []workload.OrderCol{{Col: 2}})
	for _, op := range []workload.CmpOp{workload.Lt, workload.Le, workload.Gt, workload.Ge} {
		q := edgeQuery(&workload.Spec{
			Table:      "f",
			SelectCols: []int{0},
			Preds:      []workload.Pred{{Col: 2, Op: op, Lo: 150, Hi: 150, Sel: 0.5}},
		})
		scan, err := db.Execute(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := db.Execute(q, designer.NewDesign(proj))
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(canonical(scan.Rows), canonical(fast.Rows)) {
			t.Fatalf("op %v: narrowed scan disagrees", op)
		}
		if fast.ScannedRows > scan.ScannedRows {
			t.Fatalf("op %v: narrowing read more rows", op)
		}
	}
}
