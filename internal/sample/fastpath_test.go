package sample

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"cliffguard/internal/distance"
	"cliffguard/internal/obs"
	"cliffguard/internal/workload"
)

// TestClosedFormMatchesLegacy is the fast-path property test: across seeds
// and alphas, the closed-form landing and the legacy build-and-verify path
// must produce samples at the same distance within 1e-12 (relative), and both
// must land on the requested alpha almost exactly for quadratic metrics.
func TestClosedFormMatchesLegacy(t *testing.T) {
	s := testSchema()
	metrics := []func() distance.Metric{
		func() distance.Metric { return distance.NewEuclidean(s.NumColumns()) },
		func() distance.Metric { return distance.NewSeparate(s.NumColumns()) },
	}
	for seed := int64(100); seed < 112; seed++ {
		wrng := rand.New(rand.NewSource(seed))
		w0 := baseWorkload(s, wrng, 5+wrng.Intn(12))
		for _, mk := range metrics {
			for _, alpha := range []float64{0.0008, 0.003, 0.01, 0.03} {
				m := mk()
				fast := New(m, NewMutator(s))
				fast.Metrics = obs.NewMetrics()
				slow := New(m, NewMutator(s))
				slow.DisableFastPath = true
				slow.Metrics = obs.NewMetrics()

				drawSeed := seed*1009 + int64(alpha*1e6)
				wF, errF := fast.SampleAt(rand.New(rand.NewSource(drawSeed)), w0, alpha)
				wS, errS := slow.SampleAt(rand.New(rand.NewSource(drawSeed)), w0, alpha)
				if (errF == nil) != (errS == nil) {
					t.Fatalf("seed %d alpha %g %s: fast err %v, slow err %v",
						seed, alpha, m.Name(), errF, errS)
				}
				if errF != nil {
					continue // both unreachable: nothing to compare
				}
				dF := m.Distance(w0, wF)
				dS := m.Distance(w0, wS)
				if math.Abs(dF-dS) > 1e-12*alpha {
					t.Errorf("seed %d alpha %g %s: fast landed %v, slow landed %v",
						seed, alpha, m.Name(), dF, dS)
				}
				if rel := math.Abs(dF-alpha) / alpha; rel > 1e-9 {
					t.Errorf("seed %d alpha %g %s: closed form landed %v (rel err %g)",
						seed, alpha, m.Name(), dF, rel)
				}
				// The fast path must actually have been taken — and have spent
				// strictly fewer Distance evaluations than the legacy path.
				if fast.Metrics.SamplerFastPath.Load() != 1 || fast.Metrics.SamplerSlowPath.Load() != 0 {
					t.Fatalf("seed %d alpha %g %s: fast path not taken (fast=%d slow=%d)",
						seed, alpha, m.Name(),
						fast.Metrics.SamplerFastPath.Load(), fast.Metrics.SamplerSlowPath.Load())
				}
				if slow.Metrics.SamplerSlowPath.Load() != 1 {
					t.Fatalf("seed %d alpha %g %s: legacy path not taken", seed, alpha, m.Name())
				}
				if f, l := fast.Metrics.SamplerDistanceEvals.Load(), slow.Metrics.SamplerDistanceEvals.Load(); f >= l {
					t.Errorf("seed %d alpha %g %s: fast path used %d evals, legacy %d",
						seed, alpha, m.Name(), f, l)
				}
			}
		}
	}
}

// TestNonQuadraticFallsBack: delta_latency is not a Quadratic metric, so the
// sampler must take the verify/bisect path (and still land within tolerance).
func TestNonQuadraticFallsBack(t *testing.T) {
	s := testSchema()
	baseline := func(w *workload.Workload) float64 {
		var total float64
		for _, it := range w.Items {
			total += it.Weight * float64(it.Q.Columns().Len())
		}
		return total
	}
	m := distance.NewLatency(s.NumColumns(), 0.2, baseline)
	sampler := New(m, NewMutator(s))
	sampler.Metrics = obs.NewMetrics()
	rng := rand.New(rand.NewSource(9))
	w0 := baseWorkload(s, rng, 10)

	alpha := 0.01
	w1, err := sampler.SampleAt(rng, w0, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Distance(w0, w1); math.Abs(got-alpha)/alpha > sampler.tolerance()+1e-9 {
		t.Errorf("latency-metric sample landed at %g, want ~%g", got, alpha)
	}
	if sampler.Metrics.SamplerFastPath.Load() != 0 {
		t.Error("non-quadratic metric must not take the fast path")
	}
	if sampler.Metrics.SamplerSlowPath.Load() != 1 {
		t.Error("non-quadratic metric must take the slow path")
	}
}

// neighborhoodFingerprint canonicalizes a neighborhood for bit-exact
// comparison: per workload, per item, the query ID, its SWGO template key,
// and the exact weight bits.
type sampleFingerprint struct {
	id     int64
	key    string
	weight uint64
}

func neighborhoodFingerprint(ws []*workload.Workload) [][]sampleFingerprint {
	out := make([][]sampleFingerprint, len(ws))
	for i, w := range ws {
		fps := make([]sampleFingerprint, len(w.Items))
		for j, it := range w.Items {
			fps[j] = sampleFingerprint{
				id:     it.Q.ID,
				key:    it.Q.TemplateKey(workload.MaskSWGO),
				weight: math.Float64bits(it.Weight),
			}
		}
		out[i] = fps
	}
	return out
}

// TestNeighborhoodParallelDeterminism: the same seed must yield bit-identical
// neighborhoods (query identities, template keys, exact weights) at any
// parallelism, and the sampler counters must agree too.
func TestNeighborhoodParallelDeterminism(t *testing.T) {
	s := testSchema()
	w0 := baseWorkload(s, rand.New(rand.NewSource(10)), 12)

	run := func(p int) ([][]sampleFingerprint, obs.MetricsSnapshot) {
		sampler, _ := newTestSampler(s)
		sampler.Parallelism = p
		sampler.Metrics = obs.NewMetrics()
		got, err := sampler.Neighborhood(rand.New(rand.NewSource(11)), w0, 0.02, 24)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		return neighborhoodFingerprint(got), sampler.Metrics.Snapshot()
	}

	ref, refMetrics := run(1)
	for _, p := range []int{2, 4, runtime.NumCPU()} {
		got, gotMetrics := run(p)
		if len(got) != len(ref) {
			t.Fatalf("p=%d: %d samples, want %d", p, len(got), len(ref))
		}
		for i := range ref {
			if len(got[i]) != len(ref[i]) {
				t.Fatalf("p=%d sample %d: %d items, want %d", p, i, len(got[i]), len(ref[i]))
			}
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("p=%d sample %d item %d: %+v != %+v", p, i, j, got[i][j], ref[i][j])
				}
			}
		}
		if gotMetrics.SamplerDraws != refMetrics.SamplerDraws ||
			gotMetrics.SamplerRetries != refMetrics.SamplerRetries ||
			gotMetrics.SamplerFastPath != refMetrics.SamplerFastPath ||
			gotMetrics.SamplerSlowPath != refMetrics.SamplerSlowPath ||
			gotMetrics.SamplerDistanceEvals != refMetrics.SamplerDistanceEvals {
			t.Fatalf("p=%d: counters diverge: %+v vs %+v", p, gotMetrics, refMetrics)
		}
	}
}

// TestNeighborhoodGammaZeroCountsDraws: the degenerate clone branch must
// still count its draws (draw/retry ratios in cliffreport depend on it).
func TestNeighborhoodGammaZeroCountsDraws(t *testing.T) {
	s := testSchema()
	sampler, _ := newTestSampler(s)
	sampler.Metrics = obs.NewMetrics()
	rng := rand.New(rand.NewSource(12))
	w0 := baseWorkload(s, rng, 6)

	if _, err := sampler.Neighborhood(rng, w0, 0, 7); err != nil {
		t.Fatal(err)
	}
	if got := sampler.Metrics.SamplerDraws.Load(); got != 7 {
		t.Fatalf("gamma=0 neighborhood counted %d draws, want 7", got)
	}
}

// TestNeighborhoodRNGConsumption: Neighborhood consumes exactly one Uint64
// from the caller's rng regardless of n, so downstream draws from the same
// rng are independent of the neighborhood size.
func TestNeighborhoodRNGConsumption(t *testing.T) {
	s := testSchema()
	w0 := baseWorkload(s, rand.New(rand.NewSource(13)), 8)

	after := func(n int) uint64 {
		sampler, _ := newTestSampler(s)
		rng := rand.New(rand.NewSource(14))
		if _, err := sampler.Neighborhood(rng, w0, 0.01, n); err != nil {
			t.Fatal(err)
		}
		return rng.Uint64()
	}
	if a, b := after(3), after(17); a != b {
		t.Fatalf("caller rng state depends on n: %d vs %d", a, b)
	}
}
