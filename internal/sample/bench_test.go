package sample

import (
	"math/rand"
	"testing"
)

// BenchmarkSampleAt measures one Gamma-neighborhood draw (Algorithm 4):
// perturbation search, blend, verification.
func BenchmarkSampleAt(b *testing.B) {
	s := testSchema()
	sampler, _ := newTestSampler(s)
	rng := rand.New(rand.NewSource(1))
	w0 := baseWorkload(s, rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampler.SampleAt(rng, w0, 0.005); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutate measures one template mutation.
func BenchmarkMutate(b *testing.B) {
	s := testSchema()
	mut := NewMutator(s)
	rng := rand.New(rand.NewSource(2))
	w0 := baseWorkload(s, rng, 5)
	base := w0.Items[0].Q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mut.Mutate(rng, base) == nil {
			b.Fatal("nil mutation")
		}
	}
}
