package sample

import (
	"math/rand"
	"testing"

	"cliffguard/internal/distance"
	"cliffguard/internal/workload"
)

// BenchmarkSampleAt measures one Gamma-neighborhood draw (Algorithm 4):
// perturbation search, blend, closed-form landing. This is the headline
// sampler number; BenchmarkSampleAtLegacy is the pre-fast-path baseline.
func BenchmarkSampleAt(b *testing.B) {
	s := testSchema()
	sampler, _ := newTestSampler(s)
	rng := rand.New(rand.NewSource(1))
	w0 := baseWorkload(s, rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampler.SampleAt(rng, w0, 0.005); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleAtLegacy is BenchmarkSampleAt with the closed-form landing
// disabled: every draw pays the build-and-verify Distance evaluations.
func BenchmarkSampleAtLegacy(b *testing.B) {
	s := testSchema()
	sampler, _ := newTestSampler(s)
	sampler.DisableFastPath = true
	rng := rand.New(rand.NewSource(1))
	w0 := baseWorkload(s, rng, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampler.SampleAt(rng, w0, 0.005); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleAtFrozen isolates the frozen-vector cache: cold re-freezes
// W0 every draw (fresh clone), warm reuses the same W0 instance so its
// frozen vector and quadratic self-term amortize across draws.
func BenchmarkSampleAtFrozen(b *testing.B) {
	s := testSchema()
	rng := rand.New(rand.NewSource(1))
	w0 := baseWorkload(s, rng, 20)

	b.Run("cold", func(b *testing.B) {
		sampler, _ := newTestSampler(s)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < b.N; i++ {
			if _, err := sampler.SampleAt(rng, w0.Clone(), 0.005); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		sampler, _ := newTestSampler(s)
		rng := rand.New(rand.NewSource(2))
		w0.Frozen(workload.MaskSWGO) // outside the loop: prime the frozen cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sampler.SampleAt(rng, w0, 0.005); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDistanceEuclidean measures one delta_euclidean evaluation: cold
// pays the freeze (template map + key sort) for both operands, warm hits the
// cached frozen vectors and measures only the sparse merge + quadratic form.
func BenchmarkDistanceEuclidean(b *testing.B) {
	s := testSchema()
	m := distance.NewEuclidean(s.NumColumns())
	rng := rand.New(rand.NewSource(3))
	w0 := baseWorkload(s, rng, 20)
	w1 := baseWorkload(s, rng, 20)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Distance(w0.Clone(), w1.Clone())
		}
	})
	b.Run("warm", func(b *testing.B) {
		m.Distance(w0, w1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Distance(w0, w1)
		}
	})
}

// BenchmarkNeighborhood measures a full n-draw neighborhood at p=1 and
// p=GOMAXPROCS (same seed, bit-identical output).
func BenchmarkNeighborhood(b *testing.B) {
	s := testSchema()
	w0 := baseWorkload(s, rand.New(rand.NewSource(4)), 20)
	for _, par := range []struct {
		name string
		p    int
	}{{"p1", 1}, {"pmax", 0}} {
		b.Run(par.name, func(b *testing.B) {
			sampler, _ := newTestSampler(s)
			sampler.Parallelism = par.p
			rng := rand.New(rand.NewSource(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sampler.Neighborhood(rng, w0, 0.01, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMutate measures one template mutation.
func BenchmarkMutate(b *testing.B) {
	s := testSchema()
	mut := NewMutator(s)
	rng := rand.New(rand.NewSource(2))
	w0 := baseWorkload(s, rng, 5)
	base := w0.Items[0].Q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mut.Mutate(rng, base) == nil {
			b.Fatal("nil mutation")
		}
	}
}
