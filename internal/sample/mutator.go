package sample

import (
	"math"
	"math/rand"

	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

// Mutator is the default QuerySource: it perturbs templates drawn from W0 by
// adding and removing columns within the same table. This models the paper's
// uncertainty structure — future queries resemble past ones but reference
// drifted column subsets — without using any knowledge of the actual future
// workload.
type Mutator struct {
	Schema *schema.Schema
	// MaxFlips bounds how many columns a single mutation adds/removes
	// (default 5).
	MaxFlips int
}

// NewMutator returns a mutator over the given schema.
func NewMutator(s *schema.Schema) *Mutator { return &Mutator{Schema: s, MaxFlips: 2} }

// Candidates implements QuerySource by mutating randomly chosen (weight-
// proportional) queries of w0. Mutations pick replacement columns in
// proportion to how often each column appears across w0 — the workload's own
// hot columns are where drift is most likely to land, and no knowledge of
// the actual future is used.
func (m *Mutator) Candidates(rng *rand.Rand, w0 *workload.Workload, k int) []*workload.Query {
	if w0.Len() == 0 || k <= 0 {
		return nil
	}
	pop := columnPopularity(w0)
	out := make([]*workload.Query, 0, k)
	for i := 0; i < k; i++ {
		base := m.pick(rng, w0)
		if base == nil || base.Spec == nil {
			continue
		}
		if q := m.mutateWith(rng, base, pop); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// columnPopularity returns a flattened (square-root) weighted frequency of
// each column across the workload's queries. The flattening matters: drift
// reaches warm columns, not just the very hottest ones, so the perturbation
// prior should not mirror the workload's frequency skew exactly.
func columnPopularity(w0 *workload.Workload) map[int]float64 {
	pop := make(map[int]float64)
	for _, it := range w0.Items {
		for _, c := range it.Q.Columns().IDs() {
			pop[c] += it.Weight
		}
	}
	for c, w := range pop {
		pop[c] = math.Sqrt(w)
	}
	return pop
}

// pick draws a query from w0 with probability proportional to weight.
func (m *Mutator) pick(rng *rand.Rand, w0 *workload.Workload) *workload.Query {
	total := w0.TotalWeight()
	if total <= 0 {
		return nil
	}
	r := rng.Float64() * total
	for _, it := range w0.Items {
		r -= it.Weight
		if r <= 0 {
			return it.Q
		}
	}
	return w0.Items[len(w0.Items)-1].Q
}

// Mutate returns a perturbed copy of q: its spec with 1..MaxFlips column
// flips applied across the select/where/group-by clauses, staying within the
// query's anchor table. Replacement columns are drawn uniformly; Candidates
// uses the popularity-weighted variant. Returns nil if the base query's
// table is unknown.
func (m *Mutator) Mutate(rng *rand.Rand, q *workload.Query) *workload.Query {
	return m.mutateWith(rng, q, nil)
}

// mutateWith is Mutate with an optional column-popularity prior.
func (m *Mutator) mutateWith(rng *rand.Rand, q *workload.Query, pop map[int]float64) *workload.Query {
	tbl, ok := m.Schema.Table(q.Spec.Table)
	if !ok {
		return nil
	}
	spec := cloneSpec(q.Spec)
	maxFlips := m.MaxFlips
	if maxFlips <= 0 {
		maxFlips = 5
	}
	flips := 1 + rng.Intn(maxFlips)
	for i := 0; i < flips; i++ {
		m.flip(rng, spec, tbl, pop)
	}
	if len(spec.SelectCols) == 0 && len(spec.Aggs) == 0 {
		// A query must select something; restore one projected column.
		spec.SelectCols = append(spec.SelectCols, tbl.Columns[rng.Intn(len(tbl.Columns))].ID)
	}
	nq := workload.FromSpec(q.ID, q.Timestamp, spec)
	return nq
}

// flip applies one random structural mutation to the spec.
func (m *Mutator) flip(rng *rand.Rand, spec *workload.Spec, tbl *schema.Table, pop map[int]float64) {
	col := pickByPopularity(rng, tbl, pop)
	switch rng.Intn(7) {
	case 0: // add a select column
		if !containsInt(spec.SelectCols, col.ID) {
			spec.SelectCols = append(spec.SelectCols, col.ID)
		}
	case 1: // drop a select column
		if len(spec.SelectCols) > 1 {
			spec.SelectCols = removeAt(spec.SelectCols, rng.Intn(len(spec.SelectCols)))
		}
	case 2: // add a predicate with a random point/range filter
		if !predOn(spec.Preds, col.ID) {
			spec.Preds = append(spec.Preds, randomPred(rng, col))
		}
	case 3: // drop a predicate
		if len(spec.Preds) > 0 {
			i := rng.Intn(len(spec.Preds))
			spec.Preds = append(spec.Preds[:i], spec.Preds[i+1:]...)
		}
	case 4: // add a group-by column
		if !containsInt(spec.GroupBy, col.ID) {
			spec.GroupBy = append(spec.GroupBy, col.ID)
			if len(spec.Aggs) == 0 {
				spec.Aggs = append(spec.Aggs, workload.Agg{Fn: workload.Count, Col: -1})
			}
		}
	case 5: // drop a group-by column
		if len(spec.GroupBy) > 0 {
			spec.GroupBy = removeAt(spec.GroupBy, rng.Intn(len(spec.GroupBy)))
		}
	case 6: // re-target an aggregated measure
		for ai, a := range spec.Aggs {
			if a.Col < 0 {
				continue
			}
			spec.Aggs[ai].Col = col.ID
			break
		}
	}
}

// randomPred builds a filter on col with selectivity drawn log-uniformly in
// [1/card, ~0.2], mirroring the filter shapes the workload generators emit.
func randomPred(rng *rand.Rand, col schema.Column) workload.Pred {
	card := col.Cardinality
	if card < 2 {
		card = 2
	}
	if rng.Intn(2) == 0 {
		v := rng.Int63n(card)
		return workload.Pred{Col: col.ID, Op: workload.Eq, Lo: v, Hi: v, Sel: 1 / float64(card)}
	}
	span := 1 + rng.Int63n(maxI64(card/5, 1))
	lo := rng.Int63n(maxI64(card-span, 1))
	return workload.Pred{Col: col.ID, Op: workload.Between, Lo: lo, Hi: lo + span - 1,
		Sel: float64(span) / float64(card)}
}

// pickByPopularity draws one of the table's columns weighted by the
// popularity prior (with additive smoothing so cold columns stay reachable);
// a nil prior degrades to uniform.
func pickByPopularity(rng *rand.Rand, tbl *schema.Table, pop map[int]float64) schema.Column {
	if pop == nil {
		return tbl.Columns[rng.Intn(len(tbl.Columns))]
	}
	var total, maxW float64
	for _, c := range tbl.Columns {
		if w := pop[c.ID]; w > maxW {
			maxW = w
		}
	}
	smoothing := maxW*0.1 + 1e-9
	for _, c := range tbl.Columns {
		total += pop[c.ID] + smoothing
	}
	r := rng.Float64() * total
	for _, c := range tbl.Columns {
		r -= pop[c.ID] + smoothing
		if r <= 0 {
			return c
		}
	}
	return tbl.Columns[len(tbl.Columns)-1]
}

func cloneSpec(s *workload.Spec) *workload.Spec {
	out := &workload.Spec{Table: s.Table, Limit: s.Limit}
	out.SelectCols = append([]int(nil), s.SelectCols...)
	out.Aggs = append([]workload.Agg(nil), s.Aggs...)
	out.Preds = append([]workload.Pred(nil), s.Preds...)
	out.GroupBy = append([]int(nil), s.GroupBy...)
	out.OrderBy = append([]workload.OrderCol(nil), s.OrderBy...)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func predOn(preds []workload.Pred, col int) bool {
	for _, p := range preds {
		if p.Col == col {
			return true
		}
	}
	return false
}

func removeAt(s []int, i int) []int {
	return append(s[:i], s[i+1:]...)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
