package sample

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

// Mutator is the default QuerySource: it perturbs templates drawn from W0 by
// adding and removing columns within the same table. This models the paper's
// uncertainty structure — future queries resemble past ones but reference
// drifted column subsets — without using any knowledge of the actual future
// workload.
//
// Candidates is safe for concurrent calls with distinct rng instances; the
// popularity prior derived from w0 is cached per workload identity behind a
// mutex, so the repeated operand of a neighborhood (always W0) pays the
// O(items × columns) prior construction once rather than once per draw.
type Mutator struct {
	Schema *schema.Schema
	// MaxFlips bounds how many columns a single mutation adds/removes
	// (default 5).
	MaxFlips int

	mu     sync.Mutex
	popKey popCacheKey
	popVal *popModel
}

// popCacheKey identifies a workload for popularity-prior caching; length and
// total weight guard against in-place item mutation after a Clone.
type popCacheKey struct {
	w     *workload.Workload
	n     int
	total float64
}

// popModel is the popularity prior for one workload: a cumulative weighted
// column sampler per schema table. Immutable once built.
type popModel struct {
	byTable map[string]*popPicker
}

// popPicker draws a column of one table with probability proportional to its
// (smoothed) popularity, via one rng.Float64 and a binary search — the same
// distribution and rng consumption as the historical linear scan.
type popPicker struct {
	cols  []schema.Column
	cum   []float64
	total float64
}

func (p *popPicker) pick(rng *rand.Rand) schema.Column {
	r := rng.Float64() * p.total
	i := sort.SearchFloat64s(p.cum, r)
	if i >= len(p.cols) {
		i = len(p.cols) - 1
	}
	return p.cols[i]
}

// popModelFor returns the cached popularity model for w0, building it on
// first use. Single-entry cache: the sampler hammers one W0 at a time, and a
// racing rebuild is deterministic, so either instance is correct.
func (m *Mutator) popModelFor(w0 *workload.Workload) *popModel {
	key := popCacheKey{w: w0, n: w0.Len(), total: w0.TotalWeight()}
	m.mu.Lock()
	if m.popVal != nil && m.popKey == key {
		v := m.popVal
		m.mu.Unlock()
		return v
	}
	m.mu.Unlock()

	pop := columnPopularity(w0)
	model := &popModel{byTable: make(map[string]*popPicker)}
	for _, tbl := range m.Schema.Tables() {
		var maxW float64
		for _, c := range tbl.Columns {
			if w := pop[c.ID]; w > maxW {
				maxW = w
			}
		}
		// Additive smoothing keeps cold columns reachable (same constants as
		// the historical pickByPopularity).
		smoothing := maxW*0.1 + 1e-9
		p := &popPicker{cols: tbl.Columns, cum: make([]float64, len(tbl.Columns))}
		for i, c := range tbl.Columns {
			p.total += pop[c.ID] + smoothing
			p.cum[i] = p.total
		}
		model.byTable[tbl.Name] = p
	}

	m.mu.Lock()
	m.popKey, m.popVal = key, model
	m.mu.Unlock()
	return model
}

// NewMutator returns a mutator over the given schema.
func NewMutator(s *schema.Schema) *Mutator { return &Mutator{Schema: s, MaxFlips: 2} }

// Candidates implements QuerySource by mutating randomly chosen (weight-
// proportional) queries of w0. Mutations pick replacement columns in
// proportion to how often each column appears across w0 — the workload's own
// hot columns are where drift is most likely to land, and no knowledge of
// the actual future is used.
func (m *Mutator) Candidates(rng *rand.Rand, w0 *workload.Workload, k int) []*workload.Query {
	if w0.Len() == 0 || k <= 0 {
		return nil
	}
	model := m.popModelFor(w0)
	out := make([]*workload.Query, 0, k)
	for i := 0; i < k; i++ {
		base := m.pick(rng, w0)
		if base == nil || base.Spec == nil {
			continue
		}
		if q := m.mutateWith(rng, base, model); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// columnPopularity returns a flattened (square-root) weighted frequency of
// each column across the workload's queries. The flattening matters: drift
// reaches warm columns, not just the very hottest ones, so the perturbation
// prior should not mirror the workload's frequency skew exactly.
func columnPopularity(w0 *workload.Workload) map[int]float64 {
	pop := make(map[int]float64)
	for _, it := range w0.Items {
		for _, c := range it.Q.Columns().IDs() {
			pop[c] += it.Weight
		}
	}
	for c, w := range pop {
		pop[c] = math.Sqrt(w)
	}
	return pop
}

// pick draws a query from w0 with probability proportional to weight.
func (m *Mutator) pick(rng *rand.Rand, w0 *workload.Workload) *workload.Query {
	total := w0.TotalWeight()
	if total <= 0 {
		return nil
	}
	r := rng.Float64() * total
	for _, it := range w0.Items {
		r -= it.Weight
		if r <= 0 {
			return it.Q
		}
	}
	return w0.Items[len(w0.Items)-1].Q
}

// Mutate returns a perturbed copy of q: its spec with 1..MaxFlips column
// flips applied across the select/where/group-by clauses, staying within the
// query's anchor table. Replacement columns are drawn uniformly; Candidates
// uses the popularity-weighted variant. Returns nil if the base query's
// table is unknown.
func (m *Mutator) Mutate(rng *rand.Rand, q *workload.Query) *workload.Query {
	return m.mutateWith(rng, q, nil)
}

// mutateWith is Mutate with an optional column-popularity prior.
func (m *Mutator) mutateWith(rng *rand.Rand, q *workload.Query, model *popModel) *workload.Query {
	tbl, ok := m.Schema.Table(q.Spec.Table)
	if !ok {
		return nil
	}
	spec := cloneSpec(q.Spec)
	maxFlips := m.MaxFlips
	if maxFlips <= 0 {
		maxFlips = 5
	}
	flips := 1 + rng.Intn(maxFlips)
	for i := 0; i < flips; i++ {
		m.flip(rng, spec, tbl, model)
	}
	if len(spec.SelectCols) == 0 && len(spec.Aggs) == 0 {
		// A query must select something; restore one projected column.
		spec.SelectCols = append(spec.SelectCols, tbl.Columns[rng.Intn(len(tbl.Columns))].ID)
	}
	nq := workload.FromSpec(q.ID, q.Timestamp, spec)
	return nq
}

// flip applies one random structural mutation to the spec.
func (m *Mutator) flip(rng *rand.Rand, spec *workload.Spec, tbl *schema.Table, model *popModel) {
	var col schema.Column
	if model != nil {
		if p := model.byTable[tbl.Name]; p != nil {
			col = p.pick(rng)
		} else {
			col = tbl.Columns[rng.Intn(len(tbl.Columns))]
		}
	} else {
		col = tbl.Columns[rng.Intn(len(tbl.Columns))]
	}
	switch rng.Intn(7) {
	case 0: // add a select column
		if !containsInt(spec.SelectCols, col.ID) {
			spec.SelectCols = append(spec.SelectCols, col.ID)
		}
	case 1: // drop a select column
		if len(spec.SelectCols) > 1 {
			spec.SelectCols = removeAt(spec.SelectCols, rng.Intn(len(spec.SelectCols)))
		}
	case 2: // add a predicate with a random point/range filter
		if !predOn(spec.Preds, col.ID) {
			spec.Preds = append(spec.Preds, randomPred(rng, col))
		}
	case 3: // drop a predicate
		if len(spec.Preds) > 0 {
			i := rng.Intn(len(spec.Preds))
			spec.Preds = append(spec.Preds[:i], spec.Preds[i+1:]...)
		}
	case 4: // add a group-by column
		if !containsInt(spec.GroupBy, col.ID) {
			spec.GroupBy = append(spec.GroupBy, col.ID)
			if len(spec.Aggs) == 0 {
				spec.Aggs = append(spec.Aggs, workload.Agg{Fn: workload.Count, Col: -1})
			}
		}
	case 5: // drop a group-by column
		if len(spec.GroupBy) > 0 {
			spec.GroupBy = removeAt(spec.GroupBy, rng.Intn(len(spec.GroupBy)))
		}
	case 6: // re-target an aggregated measure
		for ai, a := range spec.Aggs {
			if a.Col < 0 {
				continue
			}
			spec.Aggs[ai].Col = col.ID
			break
		}
	}
}

// randomPred builds a filter on col with selectivity drawn log-uniformly in
// [1/card, ~0.2], mirroring the filter shapes the workload generators emit.
func randomPred(rng *rand.Rand, col schema.Column) workload.Pred {
	card := col.Cardinality
	if card < 2 {
		card = 2
	}
	if rng.Intn(2) == 0 {
		v := rng.Int63n(card)
		return workload.Pred{Col: col.ID, Op: workload.Eq, Lo: v, Hi: v, Sel: 1 / float64(card)}
	}
	span := 1 + rng.Int63n(maxI64(card/5, 1))
	lo := rng.Int63n(maxI64(card-span, 1))
	return workload.Pred{Col: col.ID, Op: workload.Between, Lo: lo, Hi: lo + span - 1,
		Sel: float64(span) / float64(card)}
}

func cloneSpec(s *workload.Spec) *workload.Spec {
	out := &workload.Spec{Table: s.Table, Limit: s.Limit}
	out.SelectCols = append([]int(nil), s.SelectCols...)
	out.Aggs = append([]workload.Agg(nil), s.Aggs...)
	out.Preds = append([]workload.Pred(nil), s.Preds...)
	out.GroupBy = append([]int(nil), s.GroupBy...)
	out.OrderBy = append([]workload.OrderCol(nil), s.OrderBy...)
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func predOn(preds []workload.Pred, col int) bool {
	for _, p := range preds {
		if p.Col == col {
			return true
		}
	}
	return false
}

func removeAt(s []int, i int) []int {
	return append(s[:i], s[i+1:]...)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
