// Package sample implements Algorithm 4 of the CliffGuard paper: sampling
// the workload space so that a sampled workload W1 lies at a requested
// distance alpha from a given workload W0. CliffGuard uses this to populate
// the Gamma-neighborhood it explores for worst-case neighbors.
//
// The construction follows the paper: find a query set Q disjoint from W0
// with beta = delta(W0, Q) > alpha, then blend Q into W0 with mixing weight
// c = n*lambda / (k*(1-lambda)) where lambda = sqrt(alpha/beta). Because
// delta_euclidean is quadratic in the frequency-difference vector, the blend
// lands at exactly alpha. This implementation uses fractional item weights
// instead of floor(c) integral copies, so the landing is exact rather than
// quantized.
//
// For quadratic metrics (distance.Quadratic: Euclidean, Separate) the
// landing is taken on faith — delta(W0, blend(c)) == lambda²·beta == alpha
// holds in exact arithmetic whenever Q is template-disjoint from W0 (see
// DESIGN.md "Closed-form blend landing") — so the verify/grow/bisect phase
// and its up-to-80 Distance evaluations are skipped entirely. Non-quadratic
// metrics (delta_latency) and non-disjoint perturbation sets (possible under
// restricted clause masks) keep the verification-and-bisection fallback.
//
// Neighborhood fans its draws across a bounded worker pool, one derived RNG
// substream per draw index, so the result is bit-identical at any
// parallelism setting.
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"cliffguard/internal/distance"
	"cliffguard/internal/obs"
	"cliffguard/internal/workload"
)

// QuerySource produces candidate perturbation queries "near" a workload.
// Candidates should be plausible future queries: same tables and similar
// column sets as W0's queries, but with templates not present in W0.
//
// Implementations must be safe for concurrent Candidates calls with distinct
// rng instances: the parallel Neighborhood invokes one call per in-flight
// draw. The built-in Mutator is stateless and satisfies this.
type QuerySource interface {
	// Candidates returns up to k candidate queries. Implementations may
	// return fewer if they cannot generate enough distinct templates.
	Candidates(rng *rand.Rand, w0 *workload.Workload, k int) []*workload.Query
}

// Sampler samples workloads in the Gamma-neighborhood of a target workload.
type Sampler struct {
	Metric distance.Metric
	Source QuerySource
	// MaxTries bounds the search for a perturbation set with beta > alpha
	// (the paper reports success within a few tries for k <= 5).
	MaxTries int
	// Tolerance is the acceptable relative error |delta-alpha|/alpha after
	// construction; beyond it the sampler bisects the blend weight.
	Tolerance float64
	// PerturbationSize is the initial number of perturbation queries per
	// sample (the paper's k). 0 means adaptive: a third of W0's distinct
	// templates, so the perturbed mass models broad template churn rather
	// than a few runaway queries.
	PerturbationSize int
	// Parallelism bounds the workers Neighborhood fans its draws across.
	// <= 0 means GOMAXPROCS; 1 runs on the caller's goroutine. Results are
	// bit-identical at every setting (per-draw RNG substreams).
	Parallelism int
	// DisableFastPath forces the build-and-verify landing even for quadratic
	// metrics. The closed form and the legacy path produce the same workload
	// (the legacy path's first verification succeeds and returns the same
	// blend); this switch exists for benchmarks and the property tests that
	// prove exactly that.
	DisableFastPath bool
	// Metrics, when non-nil, counts draws, perturbation-set retries, failed
	// draws, fast/slow-path landings, and sampler Distance evaluations.
	Metrics *obs.Metrics
}

// New returns a sampler with the paper-informed defaults.
func New(m distance.Metric, src QuerySource) *Sampler {
	return &Sampler{Metric: m, Source: src, MaxTries: 24, Tolerance: 0.05}
}

// ErrNoPerturbation is returned when the source cannot produce a query set
// far enough from W0 to reach the requested distance.
var ErrNoPerturbation = errors.New("sample: could not find a perturbation set with delta(W0,Q) > alpha")

// SampleAt returns a workload at distance ~alpha from w0 (Algorithm 4).
// alpha == 0 returns a clone of w0.
func (s *Sampler) SampleAt(rng *rand.Rand, w0 *workload.Workload, alpha float64) (*workload.Workload, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("sample: negative distance %g", alpha)
	}
	if w0.Len() == 0 {
		return nil, errors.New("sample: empty target workload")
	}
	if s.Metrics != nil {
		s.Metrics.SamplerDraws.Inc()
	}
	if alpha == 0 {
		return w0.Clone(), nil
	}

	quad, isQuad := s.Metric.(distance.Quadratic)
	if s.DisableFastPath {
		isQuad = false
	}

	// Find Q = {q1..qk}, Q disjoint from W0's templates, with
	// delta(W0, Q) > alpha; grow k when unsuccessful. The frozen vector's
	// sorted keys double as the fresh-template filter (binary search instead
	// of building a template-set map per draw).
	frozen := w0.Frozen(workload.MaskSWGO)
	var qset *workload.Workload
	var beta float64
	var disjoint bool
	// Spread the perturbed mass across multiple plausible drift directions:
	// one heavy mutant is not a representative neighborhood sample when the
	// same distance can also be reached by broad template churn.
	k := s.PerturbationSize
	if k <= 0 {
		k = frozen.Len() / 3
		if k < 6 {
			k = 6
		}
		if k > 40 {
			k = 40
		}
	}
	for try := 0; try < s.maxTries(); try++ {
		if try > 0 && s.Metrics != nil {
			s.Metrics.SamplerRetries.Inc()
		}
		cands := s.Source.Candidates(rng, w0, k)
		var fresh []*workload.Query
		for _, q := range cands {
			if !frozen.HasKey(q.TemplateKey(workload.MaskSWGO)) {
				fresh = append(fresh, q)
			}
		}
		if len(fresh) > 0 {
			cand := workload.New(fresh...)
			var b float64
			var dj bool
			if isQuad {
				b, dj = quad.DistanceDisjoint(w0, cand)
			} else {
				b = s.Metric.Distance(w0, cand)
			}
			s.countEvals(1)
			if b > alpha {
				qset, beta, disjoint = cand, b, dj
				break
			}
		}
		if try%3 == 2 && k < 48 {
			k += 4
		}
	}
	if qset == nil {
		if s.Metrics != nil {
			s.Metrics.SamplerFailures.Inc()
		}
		return nil, fmt.Errorf("%w (alpha=%g)", ErrNoPerturbation, alpha)
	}

	// Blend: lambda = sqrt(alpha/beta); c = n*lambda / (k*(1-lambda)).
	lambda := math.Sqrt(alpha / beta)
	n := w0.TotalWeight()
	kf := float64(qset.Len())
	c := n * lambda / (kf * (1 - lambda))

	build := func(c float64) *workload.Workload {
		out := w0.Clone()
		for _, it := range qset.Items {
			out.Add(it.Q, c*it.Weight)
		}
		return out
	}
	w1 := build(c)

	// Closed-form landing: for a quadratic metric and template-disjoint Q,
	// the blended weight fraction is u = cS/(N+cS) = lambda exactly (S = k,
	// the total weight of Q's unit items), so delta(W0, w1) = lambda²·beta =
	// alpha in exact arithmetic — verification cannot improve on it.
	if isQuad && disjoint {
		if s.Metrics != nil {
			s.Metrics.SamplerFastPath.Inc()
		}
		return w1, nil
	}
	if s.Metrics != nil {
		s.Metrics.SamplerSlowPath.Inc()
	}

	// Verify; for non-quadratic metrics bisect c until within tolerance.
	got := s.Metric.Distance(w0, w1)
	s.countEvals(1)
	if relErr(got, alpha) > s.tolerance() {
		lo, hi := 0.0, c
		// Grow hi until it overshoots, then bisect.
		for i := 0; i < 32; i++ {
			d := s.Metric.Distance(w0, build(hi))
			s.countEvals(1)
			if d >= alpha {
				break
			}
			hi *= 2
		}
		for i := 0; i < 48; i++ {
			mid := (lo + hi) / 2
			d := s.Metric.Distance(w0, build(mid))
			s.countEvals(1)
			if d < alpha {
				lo = mid
			} else {
				hi = mid
			}
		}
		w1 = build((lo + hi) / 2)
	}
	return w1, nil
}

// Neighborhood returns n sampled workloads with distances drawn uniformly
// from (0, gamma] (Algorithm 2, line 2). Failed draws are skipped, so the
// result may be shorter than n; it errors only if no draw succeeds.
//
// Draws are fanned across min(Parallelism, n) workers. Each draw i consumes
// only its own RNG substream, derived as splitmix64(root, i) from a single
// root value read off the caller's rng, so the returned workloads — and the
// counters fed to Metrics — are bit-identical whether Parallelism is 1 or
// NumCPU. The caller's rng advances by exactly one Uint64 regardless of n.
func (s *Sampler) Neighborhood(rng *rand.Rand, w0 *workload.Workload, gamma float64, n int) ([]*workload.Workload, error) {
	if gamma < 0 {
		return nil, fmt.Errorf("sample: negative gamma %g", gamma)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sample: non-positive sample count %d", n)
	}
	if gamma == 0 {
		// Degenerate neighborhood: n clones are still n draws — report
		// summaries divide retries by draws, so these must be counted.
		if s.Metrics != nil {
			s.Metrics.SamplerDraws.Add(uint64(n))
		}
		out := make([]*workload.Workload, n)
		for i := range out {
			out[i] = w0.Clone()
		}
		return out, nil
	}

	root := rng.Uint64()
	results := make([]*workload.Workload, n)
	errs := make([]error, n)
	draw := func(i int) {
		sub := rand.New(rand.NewSource(int64(splitmix64(root, uint64(i)))))
		alpha := gamma * (0.05 + 0.95*sub.Float64()) // avoid degenerate near-zero draws
		results[i], errs[i] = s.SampleAt(sub, w0, alpha)
	}

	if p := s.workers(n); p == 1 {
		for i := 0; i < n; i++ {
			draw(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					draw(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Merge in draw-index order so the output is independent of completion
	// order; failed draws are dropped here.
	out := make([]*workload.Workload, 0, n)
	var lastErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		out = append(out, results[i])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sample: no neighborhood samples succeeded: %w", lastErr)
	}
	return out, nil
}

// splitmix64 derives the seed of draw substream i from the root value: one
// round of the SplitMix64 output function over root + (i+1)·golden-gamma.
// Distinct indexes land in well-separated states, and the derivation depends
// only on (root, i) — never on scheduling — which is what makes the parallel
// Neighborhood reproducible.
func splitmix64(root, i uint64) uint64 {
	x := root + (i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// workers resolves the worker count for an n-draw neighborhood.
func (s *Sampler) workers(n int) int {
	p := s.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// countEvals adds Distance evaluations to the sampler's eval counter.
func (s *Sampler) countEvals(n uint64) {
	if s.Metrics != nil {
		s.Metrics.SamplerDistanceEvals.Add(n)
	}
}

func (s *Sampler) maxTries() int {
	if s.MaxTries > 0 {
		return s.MaxTries
	}
	return 24
}

func (s *Sampler) tolerance() float64 {
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return 0.05
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
