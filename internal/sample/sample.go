// Package sample implements Algorithm 4 of the CliffGuard paper: sampling
// the workload space so that a sampled workload W1 lies at a requested
// distance alpha from a given workload W0. CliffGuard uses this to populate
// the Gamma-neighborhood it explores for worst-case neighbors.
//
// The construction follows the paper: find a query set Q disjoint from W0
// with beta = delta(W0, Q) > alpha, then blend Q into W0 with mixing weight
// c = n*lambda / (k*(1-lambda)) where lambda = sqrt(alpha/beta). Because
// delta_euclidean is quadratic in the frequency-difference vector, the blend
// lands at exactly alpha. This implementation uses fractional item weights
// instead of floor(c) integral copies, so the landing is exact rather than
// quantized; a verification-and-bisection fallback handles metrics that are
// not exactly quadratic (e.g. delta_latency).
package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cliffguard/internal/distance"
	"cliffguard/internal/obs"
	"cliffguard/internal/workload"
)

// QuerySource produces candidate perturbation queries "near" a workload.
// Candidates should be plausible future queries: same tables and similar
// column sets as W0's queries, but with templates not present in W0.
type QuerySource interface {
	// Candidates returns up to k candidate queries. Implementations may
	// return fewer if they cannot generate enough distinct templates.
	Candidates(rng *rand.Rand, w0 *workload.Workload, k int) []*workload.Query
}

// Sampler samples workloads in the Gamma-neighborhood of a target workload.
type Sampler struct {
	Metric distance.Metric
	Source QuerySource
	// MaxTries bounds the search for a perturbation set with beta > alpha
	// (the paper reports success within a few tries for k <= 5).
	MaxTries int
	// Tolerance is the acceptable relative error |delta-alpha|/alpha after
	// construction; beyond it the sampler bisects the blend weight.
	Tolerance float64
	// PerturbationSize is the initial number of perturbation queries per
	// sample (the paper's k). 0 means adaptive: a third of W0's distinct
	// templates, so the perturbed mass models broad template churn rather
	// than a few runaway queries.
	PerturbationSize int
	// Metrics, when non-nil, counts draws, perturbation-set retries, and
	// failed draws (SamplerDraws/SamplerRetries/SamplerFailures).
	Metrics *obs.Metrics
}

// New returns a sampler with the paper-informed defaults.
func New(m distance.Metric, src QuerySource) *Sampler {
	return &Sampler{Metric: m, Source: src, MaxTries: 24, Tolerance: 0.05}
}

// ErrNoPerturbation is returned when the source cannot produce a query set
// far enough from W0 to reach the requested distance.
var ErrNoPerturbation = errors.New("sample: could not find a perturbation set with delta(W0,Q) > alpha")

// SampleAt returns a workload at distance ~alpha from w0 (Algorithm 4).
// alpha == 0 returns a clone of w0.
func (s *Sampler) SampleAt(rng *rand.Rand, w0 *workload.Workload, alpha float64) (*workload.Workload, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("sample: negative distance %g", alpha)
	}
	if w0.Len() == 0 {
		return nil, errors.New("sample: empty target workload")
	}
	if s.Metrics != nil {
		s.Metrics.SamplerDraws.Inc()
	}
	if alpha == 0 {
		return w0.Clone(), nil
	}

	// Find Q = {q1..qk}, Q disjoint from W0's templates, with
	// delta(W0, Q) > alpha; grow k when unsuccessful.
	templates := w0.TemplateSet(workload.MaskSWGO)
	var qset *workload.Workload
	var beta float64
	// Spread the perturbed mass across multiple plausible drift directions:
	// one heavy mutant is not a representative neighborhood sample when the
	// same distance can also be reached by broad template churn.
	k := s.PerturbationSize
	if k <= 0 {
		k = len(templates) / 3
		if k < 6 {
			k = 6
		}
		if k > 40 {
			k = 40
		}
	}
	for try := 0; try < s.maxTries(); try++ {
		if try > 0 && s.Metrics != nil {
			s.Metrics.SamplerRetries.Inc()
		}
		cands := s.Source.Candidates(rng, w0, k)
		var fresh []*workload.Query
		for _, q := range cands {
			if !templates[q.TemplateKey(workload.MaskSWGO)] {
				fresh = append(fresh, q)
			}
		}
		if len(fresh) > 0 {
			cand := workload.New(fresh...)
			if b := s.Metric.Distance(w0, cand); b > alpha {
				qset, beta = cand, b
				break
			}
		}
		if try%3 == 2 && k < 48 {
			k += 4
		}
	}
	if qset == nil {
		if s.Metrics != nil {
			s.Metrics.SamplerFailures.Inc()
		}
		return nil, fmt.Errorf("%w (alpha=%g)", ErrNoPerturbation, alpha)
	}

	// Blend: lambda = sqrt(alpha/beta); c = n*lambda / (k*(1-lambda)).
	lambda := math.Sqrt(alpha / beta)
	n := w0.TotalWeight()
	kf := float64(qset.Len())
	c := n * lambda / (kf * (1 - lambda))

	build := func(c float64) *workload.Workload {
		out := w0.Clone()
		for _, it := range qset.Items {
			out.Add(it.Q, c*it.Weight)
		}
		return out
	}
	w1 := build(c)

	// Verify; for non-quadratic metrics bisect c until within tolerance.
	got := s.Metric.Distance(w0, w1)
	if relErr(got, alpha) > s.tolerance() {
		lo, hi := 0.0, c
		// Grow hi until it overshoots, then bisect.
		for i := 0; i < 32 && s.Metric.Distance(w0, build(hi)) < alpha; i++ {
			hi *= 2
		}
		for i := 0; i < 48; i++ {
			mid := (lo + hi) / 2
			if s.Metric.Distance(w0, build(mid)) < alpha {
				lo = mid
			} else {
				hi = mid
			}
		}
		w1 = build((lo + hi) / 2)
	}
	return w1, nil
}

// Neighborhood returns n sampled workloads with distances drawn uniformly
// from (0, gamma] (Algorithm 2, line 2). Failed draws are skipped, so the
// result may be shorter than n; it errors only if no draw succeeds.
func (s *Sampler) Neighborhood(rng *rand.Rand, w0 *workload.Workload, gamma float64, n int) ([]*workload.Workload, error) {
	if gamma < 0 {
		return nil, fmt.Errorf("sample: negative gamma %g", gamma)
	}
	if n <= 0 {
		return nil, fmt.Errorf("sample: non-positive sample count %d", n)
	}
	if gamma == 0 {
		out := make([]*workload.Workload, n)
		for i := range out {
			out[i] = w0.Clone()
		}
		return out, nil
	}
	var out []*workload.Workload
	var lastErr error
	for i := 0; i < n; i++ {
		alpha := gamma * (0.05 + 0.95*rng.Float64()) // avoid degenerate near-zero draws
		w1, err := s.SampleAt(rng, w0, alpha)
		if err != nil {
			lastErr = err
			continue
		}
		out = append(out, w1)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sample: no neighborhood samples succeeded: %w", lastErr)
	}
	return out, nil
}

func (s *Sampler) maxTries() int {
	if s.MaxTries > 0 {
		return s.MaxTries
	}
	return 24
}

func (s *Sampler) tolerance() float64 {
	if s.Tolerance > 0 {
		return s.Tolerance
	}
	return 0.05
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
