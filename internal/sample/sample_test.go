package sample

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cliffguard/internal/distance"
	"cliffguard/internal/schema"
	"cliffguard/internal/workload"
)

func testSchema() *schema.Schema {
	cols := make([]schema.ColumnDef, 30)
	for i := range cols {
		cols[i] = schema.ColumnDef{Name: colName(i), Type: schema.Int64, Cardinality: 1000}
	}
	return schema.MustNew([]schema.TableDef{
		{Name: "facts", Fact: true, Rows: 100_000, Columns: cols},
	})
}

func colName(i int) string {
	return "c" + string(rune('a'+i/10)) + string(rune('0'+i%10))
}

// baseWorkload builds a workload of several templates over the schema.
func baseWorkload(s *schema.Schema, rng *rand.Rand, n int) *workload.Workload {
	w := &workload.Workload{}
	tbl := s.Tables()[0]
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(4)
		spec := &workload.Spec{Table: tbl.Name}
		for j := 0; j < k; j++ {
			spec.SelectCols = append(spec.SelectCols, tbl.Columns[rng.Intn(len(tbl.Columns))].ID)
		}
		spec.Preds = append(spec.Preds, workload.Pred{
			Col: tbl.Columns[rng.Intn(len(tbl.Columns))].ID,
			Op:  workload.Eq, Lo: 5, Hi: 5, Sel: 0.001,
		})
		w.Add(workload.FromSpec(workload.NextID(), time.Time{}, spec), 1+rng.Float64()*4)
	}
	return w
}

func newTestSampler(s *schema.Schema) (*Sampler, distance.Metric) {
	m := distance.NewEuclidean(s.NumColumns())
	return New(m, NewMutator(s)), m
}

func TestSampleAtHitsRequestedDistance(t *testing.T) {
	s := testSchema()
	sampler, m := newTestSampler(s)
	rng := rand.New(rand.NewSource(1))
	w0 := baseWorkload(s, rng, 12)

	for _, alpha := range []float64{0.001, 0.005, 0.02} {
		w1, err := sampler.SampleAt(rng, w0, alpha)
		if err != nil {
			t.Fatalf("SampleAt(%g): %v", alpha, err)
		}
		got := m.Distance(w0, w1)
		if math.Abs(got-alpha)/alpha > 0.06 {
			t.Errorf("SampleAt(%g) landed at %g (%.1f%% off)", alpha, got, 100*math.Abs(got-alpha)/alpha)
		}
		// The sample must contain all of W0 (Algorithm 4 adds, never removes).
		if w1.Len() < w0.Len() {
			t.Error("sampled workload lost W0 queries")
		}
	}
}

func TestSampleAtZero(t *testing.T) {
	s := testSchema()
	sampler, m := newTestSampler(s)
	rng := rand.New(rand.NewSource(2))
	w0 := baseWorkload(s, rng, 8)
	w1, err := sampler.SampleAt(rng, w0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Distance(w0, w1); d != 0 {
		t.Fatalf("distance = %g, want 0", d)
	}
}

func TestSampleAtErrors(t *testing.T) {
	s := testSchema()
	sampler, _ := newTestSampler(s)
	rng := rand.New(rand.NewSource(3))
	if _, err := sampler.SampleAt(rng, &workload.Workload{}, 0.01); err == nil {
		t.Error("empty workload should fail")
	}
	w0 := baseWorkload(s, rng, 4)
	if _, err := sampler.SampleAt(rng, w0, -1); err == nil {
		t.Error("negative distance should fail")
	}
	// A distance no perturbation can reach (metric is bounded by 1).
	if _, err := sampler.SampleAt(rng, w0, 5); !errors.Is(err, ErrNoPerturbation) {
		t.Errorf("unreachable distance error = %v, want ErrNoPerturbation", err)
	}
}

func TestNeighborhood(t *testing.T) {
	s := testSchema()
	sampler, m := newTestSampler(s)
	rng := rand.New(rand.NewSource(4))
	w0 := baseWorkload(s, rng, 10)

	const gamma = 0.01
	samples, err := sampler.Neighborhood(rng, w0, gamma, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	for i, w1 := range samples {
		d := m.Distance(w0, w1)
		if d <= 0 || d > gamma*1.06 {
			t.Errorf("sample %d at distance %g, want (0, %g]", i, d, gamma)
		}
	}

	// gamma = 0: clones of W0.
	clones, err := sampler.Neighborhood(rng, w0, 0, 3)
	if err != nil || len(clones) != 3 {
		t.Fatalf("gamma=0 neighborhood: %v, %d samples", err, len(clones))
	}
	for _, c := range clones {
		if d := m.Distance(w0, c); d != 0 {
			t.Error("gamma=0 sample should be at distance 0")
		}
	}

	if _, err := sampler.Neighborhood(rng, w0, -1, 3); err == nil {
		t.Error("negative gamma should fail")
	}
	if _, err := sampler.Neighborhood(rng, w0, 0.01, 0); err == nil {
		t.Error("zero samples should fail")
	}
}

// TestSampleAtProperty: the landing accuracy holds across random workloads
// and distances.
func TestSampleAtProperty(t *testing.T) {
	s := testSchema()
	sampler, m := newTestSampler(s)
	check := func(seed int64, rawAlpha float64) bool {
		rng := rand.New(rand.NewSource(seed))
		w0 := baseWorkload(s, rng, 5+rng.Intn(10))
		alpha := 0.0005 + math.Mod(math.Abs(rawAlpha), 0.02)
		w1, err := sampler.SampleAt(rng, w0, alpha)
		if err != nil {
			// Acceptable only for unreachable distances; these are small.
			return false
		}
		got := m.Distance(w0, w1)
		return math.Abs(got-alpha)/alpha < 0.06
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMutatorProducesValidQueries(t *testing.T) {
	s := testSchema()
	mut := NewMutator(s)
	rng := rand.New(rand.NewSource(5))
	w0 := baseWorkload(s, rng, 10)

	cands := mut.Candidates(rng, w0, 50)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, q := range cands {
		if q.Spec == nil || q.Spec.Table != "facts" {
			t.Fatalf("bad candidate: %v", q)
		}
		if q.Columns().Empty() {
			t.Fatal("candidate references no columns")
		}
		for _, c := range q.Spec.ReferencedCols() {
			if !s.ValidID(c) || s.Column(c).Table != "facts" {
				t.Fatalf("candidate references invalid column %d", c)
			}
		}
		for _, p := range q.Spec.Preds {
			if p.Sel <= 0 || p.Sel > 1 {
				t.Fatalf("candidate pred selectivity %g out of range", p.Sel)
			}
		}
	}
}

func TestMutateDiffersFromBase(t *testing.T) {
	s := testSchema()
	mut := NewMutator(s)
	rng := rand.New(rand.NewSource(6))
	w0 := baseWorkload(s, rng, 3)
	base := w0.Items[0].Q

	differs := 0
	for i := 0; i < 50; i++ {
		m := mut.Mutate(rng, base)
		if m == nil {
			t.Fatal("Mutate returned nil")
		}
		if m.TemplateKey(workload.MaskSWGO) != base.TemplateKey(workload.MaskSWGO) {
			differs++
		}
		// Mutation must not alias the base spec.
		if m.Spec == base.Spec {
			t.Fatal("Mutate shares the base spec")
		}
	}
	if differs < 25 {
		t.Errorf("only %d/50 mutations changed the template", differs)
	}
}

func TestMutatorEmptyInputs(t *testing.T) {
	s := testSchema()
	mut := NewMutator(s)
	rng := rand.New(rand.NewSource(7))
	if got := mut.Candidates(rng, &workload.Workload{}, 5); got != nil {
		t.Error("empty workload should yield no candidates")
	}
	w0 := baseWorkload(s, rng, 2)
	if got := mut.Candidates(rng, w0, 0); got != nil {
		t.Error("k=0 should yield no candidates")
	}
}

func TestSampleAtIntegral(t *testing.T) {
	s := testSchema()
	sampler, m := newTestSampler(s)
	rng := rand.New(rand.NewSource(8))
	w0 := baseWorkload(s, rng, 12)

	// With a large enough alpha the integral variant lands within the
	// quantization error of floor(c).
	alpha := 0.01
	w1, err := sampler.SampleAtIntegral(rng, w0, alpha)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Distance(w0, w1)
	if got <= 0 || got > alpha*1.5 {
		t.Errorf("integral sample landed at %g for alpha %g", got, alpha)
	}
	// All blend weights are integral multiples of the source weights (copies).
	if w1.Len() <= w0.Len() {
		t.Error("integral sample added no copies")
	}
	// alpha = 0 clones.
	w2, err := sampler.SampleAtIntegral(rng, w0, 0)
	if err != nil || m.Distance(w0, w2) != 0 {
		t.Fatalf("alpha=0: %v", err)
	}
	// Errors mirror SampleAt.
	if _, err := sampler.SampleAtIntegral(rng, &workload.Workload{}, 0.01); err == nil {
		t.Error("empty workload should fail")
	}
	if _, err := sampler.SampleAtIntegral(rng, w0, -1); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := sampler.SampleAtIntegral(rng, w0, 9); !errors.Is(err, ErrNoPerturbation) {
		t.Error("unreachable alpha should be ErrNoPerturbation")
	}
}
