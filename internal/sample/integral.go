package sample

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"cliffguard/internal/workload"
)

// SampleAtIntegral is the paper's literal Algorithm 4: it adds ⌊c⌋ integral
// copies of every perturbation query instead of a single fractional-weight
// entry. The landing distance is therefore quantized — with small workloads
// or small alpha, ⌊c⌋ can round the blend well away from (or to zero of) the
// requested distance — which is why SampleAt is the default. This variant
// exists for fidelity and for the ablation benchmarks.
func (s *Sampler) SampleAtIntegral(rng *rand.Rand, w0 *workload.Workload, alpha float64) (*workload.Workload, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("sample: negative distance %g", alpha)
	}
	if w0.Len() == 0 {
		return nil, errors.New("sample: empty target workload")
	}
	if alpha == 0 {
		return w0.Clone(), nil
	}

	frozen := w0.Frozen(workload.MaskSWGO)
	var qset *workload.Workload
	var beta float64
	k := s.PerturbationSize
	if k <= 0 {
		k = frozen.Len() / 3
		if k < 6 {
			k = 6
		}
		if k > 40 {
			k = 40
		}
	}
	for try := 0; try < s.maxTries(); try++ {
		cands := s.Source.Candidates(rng, w0, k)
		var fresh []*workload.Query
		for _, q := range cands {
			if !frozen.HasKey(q.TemplateKey(workload.MaskSWGO)) {
				fresh = append(fresh, q)
			}
		}
		if len(fresh) > 0 {
			cand := workload.New(fresh...)
			if b := s.Metric.Distance(w0, cand); b > alpha {
				qset, beta = cand, b
				break
			}
		}
		if try%3 == 2 && k < 48 {
			k += 4
		}
	}
	if qset == nil {
		return nil, fmt.Errorf("%w (alpha=%g)", ErrNoPerturbation, alpha)
	}

	lambda := math.Sqrt(alpha / beta)
	n := w0.TotalWeight()
	kf := float64(qset.Len())
	copies := int(math.Floor(n * lambda / (kf * (1 - lambda))))

	out := w0.Clone()
	for c := 0; c < copies; c++ {
		for _, it := range qset.Items {
			out.Add(it.Q, it.Weight)
		}
	}
	return out, nil
}
