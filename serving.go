package cliffguard

import (
	"context"
	"io"

	"cliffguard/internal/engine"
	"cliffguard/internal/ingest"
	"cliffguard/internal/serve"
	"cliffguard/internal/sqlparse"
)

// The engine facade: one spec-driven constructor for every engine simulator.
// OpenEngine(EngineSpec{Kind: "rowstore"}) replaces the historical
// per-engine constructor pairs (NewVertica/NewVerticaWithData, ...), which
// remain as thin deprecated wrappers over it.
type (
	// EngineSpec declares which engine to open (kind, scale, optional
	// explicit schema or dataset). The zero Kind means "vertica".
	EngineSpec = engine.Spec
	// Engine is an opened engine: the cost model plus schema access, the
	// nominal designer, metrics instrumentation, the cost-model class
	// fingerprint, and Unwrap to the underlying simulator.
	Engine = engine.Engine
)

// Engine kind names accepted by EngineSpec.Kind.
const (
	EngineVertica  = engine.KindVertica
	EngineRowStore = engine.KindRowStore
	EngineApprox   = engine.KindApprox
)

// OpenEngine opens the engine the spec names. Aliases ("rowsim", "vertsim",
// "aqesim", ...) and a zero scale are normalized.
func OpenEngine(spec EngineSpec) (Engine, error) { return engine.Open(spec) }

// The run API: RunSpec declares a robust-design run (engine, metric,
// designer portfolio, loop options, workload); StartRun executes it
// asynchronously and returns a RunHandle with status, cancellation, await,
// and access to the run's event stream, spans, and report. Guard.Design and
// Guard.DesignWithTrace are implemented on the same loop, so both paths
// yield bit-identical designs, traces, and events for the same spec.
type (
	// RunSpec declares one robust-design run.
	RunSpec = serve.RunSpec
	// RunHandle is a running (or finished) asynchronous design run.
	RunHandle = serve.RunHandle
	// RunStatus is a RunHandle lifecycle state.
	RunStatus = serve.RunStatus

	// AdvisorServer is the multi-tenant robust-design advisor server behind
	// cmd/cliffguardd: tenants, async runs, the /v1 HTTP API, cross-tenant
	// unit-cost sharing, and graceful drain (Shutdown).
	AdvisorServer = serve.Server
	// ServerConfig configures an AdvisorServer.
	ServerConfig = serve.Config
)

// RunHandle lifecycle states.
const (
	RunQueued    = serve.StatusQueued
	RunRunning   = serve.StatusRunning
	RunDone      = serve.StatusDone
	RunFailed    = serve.StatusFailed
	RunCancelled = serve.StatusCancelled
)

// StartRun validates the spec and launches the run asynchronously.
func StartRun(ctx context.Context, spec RunSpec) (*RunHandle, error) {
	return serve.StartRun(ctx, spec)
}

// NewAdvisorServer builds the multi-tenant advisor server. Start it with
// Start(addr) (or mount Handler() yourself) and stop it with Shutdown.
func NewAdvisorServer(cfg ServerConfig) *AdvisorServer { return serve.NewServer(cfg) }

// ParseWorkload parses a SQL-per-line stream (optionally timestamp-tab
// prefixed, the cmd/wlgen format) against the schema, assigning query IDs
// sequentially from firstID. It is the shared ingestion path of the
// cliffguard CLI and the cliffguardd workload endpoint, built on
// IngestReader: duplicate statements fold into weighted items, so resident
// memory is O(distinct statements) at any log size.
func ParseWorkload(s *Schema, r io.Reader, firstID int64) (*Workload, int, error) {
	return serve.ParseWorkload(s, r, firstID)
}

// The streaming ingestion API (internal/ingest): query logs stream through
// the parser in chunks and duplicate statements fold into single weighted
// items keyed by full structural identity, so a million-query log with a few
// thousand distinct templates occupies a few thousand items. The folded
// workload's frozen frequency vectors are bit-identical to the naive
// one-item-per-statement parse (the workload package's two-phase
// normalization guarantees it), so folding is invisible to the robust loop.
type (
	// IngestOptions configure a streaming ingestion pass (first query ID,
	// statement size cap, folding escape hatch, metrics registry).
	IngestOptions = ingest.Options
	// IngestStats tallies one ingestion pass: statements parsed (Streamed),
	// distinct folded items (Templates), and unparseable statements
	// (Skipped).
	IngestStats = ingest.Stats
)

// IngestReader streams SQL statements from r against the schema, folding
// duplicates. The grammar is a superset of the cmd/wlgen SQL-per-line
// format: multi-line ';'-terminated statements, optional RFC3339+tab
// timestamps, blank lines and "--" comments.
func IngestReader(s *Schema, r io.Reader, opts IngestOptions) (*Workload, IngestStats, error) {
	return ingest.Reader(s, r, opts)
}

// IngestFile is IngestReader over one log file.
func IngestFile(s *Schema, path string, opts IngestOptions) (*Workload, IngestStats, error) {
	return ingest.File(s, path, opts)
}

// IngestDir ingests every regular non-hidden file in dir in sorted name
// order as one continuous log, folding duplicates across file boundaries.
func IngestDir(s *Schema, dir string, opts IngestOptions) (*Workload, IngestStats, error) {
	return ingest.Dir(s, dir, opts)
}

// LoadWorkloadDir loads a self-describing workload directory:
// dir/schema.sql (DDL parsed by ParseSchemaSQL) plus dir/queries/ (a log
// directory) or dir/queries.sql (a single log).
func LoadWorkloadDir(dir string, opts IngestOptions) (*Schema, *Workload, IngestStats, error) {
	return ingest.Load(dir, opts)
}

// IsWorkloadDir reports whether path looks like a LoadWorkloadDir layout
// (a directory containing schema.sql).
func IsWorkloadDir(path string) bool { return ingest.IsWorkloadDir(path) }

// ParseSchemaSQL parses a CREATE TABLE DDL script into a Schema: per table
// `CREATE TABLE name (col TYPE [CARDINALITY n], ...) [ROWS n] [FACT];`.
func ParseSchemaSQL(ddl string) (*Schema, error) { return sqlparse.ParseSchema(ddl) }
