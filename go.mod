module cliffguard

go 1.22
