// Command apicheck dumps the exported API surface of a Go package directory
// as sorted, canonical one-line declarations. It is the offline fallback
// behind tools/apidiff.sh: golang.org/x/exp/apidiff gives richer
// compatibility analysis, but it cannot be assumed present in a hermetic
// build, so the CI gate diffs this dump against a checked-in baseline
// (api/cliffguard.api) instead. A vanished or changed line is an
// incompatible API change; a new line is a compatible addition.
//
// Usage:
//
//	apicheck <package-dir>
//	apicheck -routes
//
// With -routes it instead dumps the cliffguardd /v1 HTTP route table (from
// internal/serve.RouteTable, the same table that registers the mux) as
// sorted "METHOD PATTERN [request=T] response=T" lines, diffed against
// api/http.api. A vanished or changed line is an incompatible wire change; a
// new line is a compatible addition.
//
// Test files and files excluded by build constraints we don't evaluate are
// skipped (only *_test.go is filtered; the packages under api/ review are
// constraint-free).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"

	"cliffguard/internal/serve"
)

func main() {
	if len(os.Args) == 2 && os.Args[1] == "-routes" {
		for _, l := range routeLines() {
			fmt.Println(l)
		}
		return
	}
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: apicheck <package-dir> | apicheck -routes")
		os.Exit(2)
	}
	lines, err := surface(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// routeLines renders the /v1 route table one canonical line per endpoint.
func routeLines() []string {
	var out []string
	for _, rt := range serve.RouteTable() {
		line := rt.Method + " " + rt.Pattern
		if rt.Request != "" {
			line += " request=" + rt.Request
		}
		line += " response=" + rt.Response
		out = append(out, line)
	}
	// RouteTable is already (pattern, method)-sorted; re-sort lexically so
	// the baseline diffs with plain comm like the Go surface does.
	sort.Strings(out)
	return out
}

// surface returns the sorted exported declarations of the package in dir.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, name, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return dedupe(lines), nil
}

func declLines(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			t := typeString(fset, d.Recv.List[0].Type)
			// Methods on unexported receivers are not part of the surface.
			if !ast.IsExported(strings.TrimPrefix(t, "*")) {
				return nil
			}
			recv = "(" + t + ") "
		}
		out = append(out, fmt.Sprintf("%s: func %s%s%s", pkg, recv, d.Name.Name,
			strings.TrimPrefix(typeString(fset, d.Type), "func")))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				assign := " "
				if s.Assign.IsValid() {
					assign = " = "
				}
				out = append(out, fmt.Sprintf("%s: type %s%s%s",
					pkg, s.Name.Name, assign, typeString(fset, exportedOnly(s.Type))))
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				typ := ""
				if s.Type != nil {
					typ = " " + typeString(fset, s.Type)
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s: %s %s%s", pkg, kw, n.Name, typ))
					}
				}
			}
		}
	}
	return out
}

// exportedOnly strips unexported fields/methods from struct and interface
// bodies so that internal reshuffles do not churn the baseline.
func exportedOnly(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		return &ast.StructType{Fields: exportedFields(tt.Fields, false)}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Methods: exportedFields(tt.Methods, true)}
	}
	return t
}

func exportedFields(fl *ast.FieldList, keepEmbedded bool) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			if keepEmbedded {
				out.List = append(out.List, &ast.Field{Type: f.Type})
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, ast.NewIdent(n.Name))
			}
		}
		if len(names) > 0 {
			out.List = append(out.List, &ast.Field{Names: names, Type: f.Type})
		}
	}
	return out
}

func typeString(fset *token.FileSet, t ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, t); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	// Collapse multi-line struct/interface bodies to one canonical line.
	fields := strings.Fields(sb.String())
	return strings.Join(fields, " ")
}

func dedupe(lines []string) []string {
	out := lines[:0]
	var prev string
	for i, l := range lines {
		if i == 0 || l != prev {
			out = append(out, l)
		}
		prev = l
	}
	return out
}
