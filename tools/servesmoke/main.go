// Command servesmoke is the CI smoke test of the cliffguardd serving layer:
// it builds the real binary, boots it on a random port, and drives the /v1
// API end to end —
//
//  1. create a rowstore tenant, POST a wlgen-derived workload, submit a run,
//     poll to completion, and fetch the design, trace, and report;
//  2. golden-compare the served design and trace against the same RunSpec
//     executed through the in-process library path at the same parallelism
//     (the bit-identical determinism contract of the serving layer);
//  3. create a second tenant with the identical workload, run it, and require
//     the shared unit-cost memo to report cross-tenant hits via /v1/statez;
//  4. scrape /metrics and require the service telemetry families (per-route
//     request latency, per-tenant runs and queue wait) plus a populated
//     /v1/debug/requestz flight ring; every /v1 response along the way must
//     have carried an X-Request-Id, and an inbound ID must echo back;
//  5. submit a long run, send SIGTERM, and require a clean drain (exit 0)
//     within the drain timeout.
//
// Run via `make serve-smoke`. Exit status 0 means all five passed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cliffguard/internal/datagen"
	"cliffguard/internal/engine"
	"cliffguard/internal/serve"
	"cliffguard/internal/wlgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

var runBody = map[string]any{
	"gamma": 0.0008, "samples": 8, "iterations": 3, "seed": 7, "parallelism": 2,
}

func run() error {
	tmp, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "cliffguardd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/cliffguardd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building cliffguardd: %w", err)
	}

	sql, err := workloadSQL()
	if err != nil {
		return err
	}

	// Boot on a random port; the startup line carries the bound address.
	eventsDir := filepath.Join(tmp, "events")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-events-dir", eventsDir, "-drain-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer cmd.Process.Kill()

	base, err := parseListenLine(stdout)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// 1. Round trip on tenant A.
	if _, err := post(base+"/v1/tenants", "application/json",
		`{"id":"smoke-a","engine":{"kind":"rowsim"}}`); err != nil {
		return fmt.Errorf("create tenant: %w", err)
	}
	if _, err := post(base+"/v1/tenants/smoke-a/workload", "text/plain", sql); err != nil {
		return fmt.Errorf("post workload: %w", err)
	}
	body, _ := json.Marshal(runBody)
	sub, err := post(base+"/v1/tenants/smoke-a/runs", "application/json", string(body))
	if err != nil {
		return fmt.Errorf("submit run: %w", err)
	}
	runID, _ := sub["id"].(string)
	if runID == "" {
		return fmt.Errorf("submit returned no run id: %v", sub)
	}
	runURL := base + "/v1/tenants/smoke-a/runs/" + runID
	if err := pollDone(runURL); err != nil {
		return err
	}
	design, err := get(runURL + "/design")
	if err != nil {
		return fmt.Errorf("fetch design: %w", err)
	}
	trace, err := get(runURL + "/trace")
	if err != nil {
		return fmt.Errorf("fetch trace: %w", err)
	}
	report, err := get(runURL + "/report")
	if err != nil {
		return fmt.Errorf("fetch report: %w", err)
	}
	if report["final_worst_case"] == nil {
		return fmt.Errorf("report missing final_worst_case: %v", report)
	}

	// 2. Golden-compare against the library path at the same parallelism.
	if err := compareWithLibrary(sql, design, trace); err != nil {
		return err
	}

	// 3. Cross-tenant sharing: identical workload on tenant B must hit the
	// shared unit-cost memo.
	before, err := sharedHits(base)
	if err != nil {
		return err
	}
	if _, err := post(base+"/v1/tenants", "application/json",
		`{"id":"smoke-b","engine":{"kind":"rowsim"}}`); err != nil {
		return fmt.Errorf("create tenant b: %w", err)
	}
	if _, err := post(base+"/v1/tenants/smoke-b/workload", "text/plain", sql); err != nil {
		return fmt.Errorf("post workload b: %w", err)
	}
	sub, err = post(base+"/v1/tenants/smoke-b/runs", "application/json", string(body))
	if err != nil {
		return fmt.Errorf("submit run b: %w", err)
	}
	runBID, _ := sub["id"].(string)
	if err := pollDone(base + "/v1/tenants/smoke-b/runs/" + runBID); err != nil {
		return err
	}
	after, err := sharedHits(base)
	if err != nil {
		return err
	}
	if after <= before {
		return fmt.Errorf("no cross-tenant shared-cache hits: %v -> %v", before, after)
	}
	fmt.Printf("servesmoke: cross-tenant shared hits %v -> %v\n", before, after)

	// 4. Service telemetry: metric families in a real scrape, request IDs on
	// every response, and a populated flight recorder.
	if err := checkTelemetry(base); err != nil {
		return err
	}

	// 5. SIGTERM during a long run drains cleanly (exit 0, events flushed).
	long, _ := json.Marshal(map[string]any{
		"gamma": 0.0008, "samples": 40, "iterations": 1000, "seed": 7,
	})
	if _, err := post(base+"/v1/tenants/smoke-a/runs", "application/json", string(long)); err != nil {
		return fmt.Errorf("submit long run: %w", err)
	}
	time.Sleep(200 * time.Millisecond) // let it enter the loop
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("cliffguardd did not drain cleanly: %w", err)
		}
	case <-time.After(45 * time.Second):
		return fmt.Errorf("cliffguardd did not exit within the drain window")
	}
	entries, err := os.ReadDir(eventsDir)
	if err != nil || len(entries) == 0 {
		return fmt.Errorf("no event streams flushed to %s (err %v)", eventsDir, err)
	}
	fmt.Printf("servesmoke: drained with %d flushed event streams\n", len(entries))
	return nil
}

// workloadSQL renders the smoke workload in the cmd/wlgen line format.
func workloadSQL() (string, error) {
	cfg := wlgen.S1Config(datagen.Warehouse(1), 5)
	cfg.Months = 2
	cfg.DriftTargets = cfg.DriftTargets[:1]
	cfg.QueriesPerWeek = 6
	set, err := cfg.Generate()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, q := range set.Queries {
		fmt.Fprintf(&b, "%s\t%s\n", q.Timestamp.Format(time.RFC3339), q.SQL)
	}
	return b.String(), nil
}

// compareWithLibrary runs the identical RunSpec in process and requires the
// served design and trace to match it exactly.
func compareWithLibrary(sql string, design, trace map[string]any) error {
	w, _, err := serve.ParseWorkload(datagen.Warehouse(1), strings.NewReader(sql), 1)
	if err != nil {
		return err
	}
	var req serve.RunRequest
	raw, _ := json.Marshal(runBody)
	if err := json.Unmarshal(raw, &req); err != nil {
		return err
	}
	h, err := serve.StartRun(context.Background(), serve.RunSpec{
		Engine:   engine.Spec{Kind: engine.KindRowStore},
		Options:  req.Options(),
		Workload: w,
	})
	if err != nil {
		return err
	}
	libDesign, libTraces, err := h.Await(context.Background())
	if err != nil {
		return err
	}

	served, _ := design["structures"].([]any)
	if len(served) != libDesign.Len() {
		return fmt.Errorf("design mismatch: served %d structures, library %d", len(served), libDesign.Len())
	}
	for i, st := range libDesign.Structures {
		got, _ := served[i].(map[string]any)
		if got["key"] != st.Key() || int64(asFloat(got["size_bytes"])) != st.SizeBytes() {
			return fmt.Errorf("design structure %d differs: served %v, library %s/%d",
				i, got, st.Key(), st.SizeBytes())
		}
	}
	servedTrace, _ := trace["trace"].([]any)
	if len(servedTrace) != len(libTraces) {
		return fmt.Errorf("trace mismatch: served %d points, library %d", len(servedTrace), len(libTraces))
	}
	for i, tr := range libTraces {
		got, _ := servedTrace[i].(map[string]any)
		if asFloat(got["worst_case"]) != tr.WorstCase || asFloat(got["candidate_cost"]) != tr.CandidateCost {
			return fmt.Errorf("trace point %d differs: served %v, library %+v", i, got, tr)
		}
	}
	fmt.Printf("servesmoke: served run matches library path (%d structures, %d trace points)\n",
		len(served), len(servedTrace))
	return nil
}

// checkTelemetry asserts the observability contract on the live daemon: the
// service metric families show up in a real /metrics scrape, an inbound
// X-Request-Id echoes back verbatim, and the flight recorder captured the
// traffic this smoke test generated.
func checkTelemetry(base string) error {
	req, err := http.NewRequest("GET", base+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Request-Id", "servesmoke-echo-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "servesmoke-echo-1" {
		return fmt.Errorf("inbound request ID not echoed: got %q", got)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	page, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	for _, family := range []string{
		`cliffguard_http_request_latency_seconds_count{route="POST /v1/tenants/{tenant}/runs",status="2xx"}`,
		`cliffguard_http_requests_total{route="GET /v1/healthz",status="2xx"}`,
		`cliffguard_tenant_runs_total{tenant="smoke-a"}`,
		`cliffguard_tenant_queue_wait_seconds_count{tenant="smoke-a"}`,
		`cliffguard_tenant_run_duration_seconds_count{tenant="smoke-b"}`,
	} {
		if !strings.Contains(string(page), family) {
			return fmt.Errorf("/metrics scrape missing %q", family)
		}
	}

	dump, err := get(base + "/v1/debug/requestz")
	if err != nil {
		return err
	}
	reqs, _ := dump["requests"].([]any)
	if len(reqs) == 0 {
		return fmt.Errorf("flight recorder /v1/debug/requestz is empty: %v", dump)
	}
	for _, r := range reqs {
		rec, _ := r.(map[string]any)
		if id, _ := rec["request_id"].(string); id == "" {
			return fmt.Errorf("flight-recorded request without a request ID: %v", rec)
		}
	}
	fmt.Printf("servesmoke: telemetry ok (%d flight-recorded requests, service metric families present)\n", len(reqs))
	return nil
}

func asFloat(v any) float64 {
	f, _ := v.(float64)
	return f
}

// parseListenLine reads the daemon's startup line and returns the base URL.
func parseListenLine(r io.Reader) (string, error) {
	br := bufio.NewReader(r)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if strings.Contains(line, "listening at http://") {
			addr := strings.TrimPrefix(strings.Fields(line)[2], "http://")
			return "http://" + strings.TrimSuffix(addr, "/v1"), nil
		}
		if err != nil {
			return "", fmt.Errorf("cliffguardd exited before announcing its address: %v", err)
		}
	}
	return "", fmt.Errorf("no listen line within 30s")
}

func pollDone(runURL string) error {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		info, err := get(runURL)
		if err != nil {
			return err
		}
		switch info["status"] {
		case "done":
			return nil
		case "failed", "cancelled":
			return fmt.Errorf("run %s: %v", info["status"], info["error"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("run did not finish within 2m")
}

func sharedHits(base string) (float64, error) {
	st, err := get(base + "/v1/statez")
	if err != nil {
		return 0, err
	}
	sc, _ := st["shared_cache"].(map[string]any)
	return asFloat(sc["hits"]), nil
}

// get/post speak the {"schema":1,...} envelope and return the data payload.
func get(url string) (map[string]any, error) { return do("GET", url, "", "") }

func post(url, contentType, body string) (map[string]any, error) {
	return do("POST", url, contentType, body)
}

func do(method, url, contentType, body string) (map[string]any, error) {
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		return nil, fmt.Errorf("%s %s: response has no X-Request-Id header", method, url)
	}
	var env struct {
		Schema int            `json:"schema"`
		Data   map[string]any `json:"data"`
		Error  *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("%s %s: bad envelope: %w", method, url, err)
	}
	if env.Schema != 1 {
		return nil, fmt.Errorf("%s %s: envelope schema %d", method, url, env.Schema)
	}
	if env.Error != nil {
		return nil, fmt.Errorf("%s %s: %s: %s", method, url, env.Error.Code, env.Error.Message)
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("%s %s: status %d", method, url, resp.StatusCode)
	}
	return env.Data, nil
}
