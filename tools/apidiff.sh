#!/bin/sh
# apidiff.sh — gate incompatible changes to the public cliffguard package.
#
# Preferred tool: golang.org/x/exp/apidiff (run against the previous commit)
# when an `apidiff` binary is on PATH. Offline fallback (the default in this
# repo's hermetic build): dump the exported API surface with tools/apicheck
# and diff it against the checked-in baseline api/cliffguard.api.
#
#   - A baseline line missing from the current dump  -> incompatible, FAIL.
#   - A current line missing from the baseline       -> addition, allowed
#     (printed as a reminder to refresh the baseline).
#
# Escape hatches for intentional breaks:
#   APIDIFF=off make ci        # skip the gate for one run
#   make api-baseline          # accept the current surface as the new baseline
#
# Both are meant to be used together with a PR description that calls out the
# break (this is what the observability PR did for New/NewWithMetric growing
# an error result and FilterDesignable gaining a ctx parameter).
set -eu
LC_ALL=C
export LC_ALL # comm needs the same collation apicheck sorted with

if [ "${APIDIFF:-on}" = "off" ]; then
    echo "apidiff: skipped (APIDIFF=off)"
    exit 0
fi

cd "$(dirname "$0")/.."
baseline="api/cliffguard.api"
current=$(mktemp)
trap 'rm -f "$current"' EXIT

go run ./tools/apicheck . > "$current"

if [ ! -f "$baseline" ]; then
    echo "apidiff: no baseline at api/cliffguard.api; run 'make api-baseline' to create it" >&2
    exit 1
fi

# Sort defensively: a hand-edited baseline must still diff, not crash comm.
base_sorted=$(mktemp)
cur_sorted=$(mktemp)
trap 'rm -f "$current" "$base_sorted" "$cur_sorted"' EXIT
sort "$baseline" > "$base_sorted"
sort "$current" > "$cur_sorted"

removed=$(comm -23 "$base_sorted" "$cur_sorted")
added=$(comm -13 "$base_sorted" "$cur_sorted")

if [ -n "$added" ]; then
    echo "apidiff: compatible additions (refresh with 'make api-baseline'):"
    echo "$added" | sed 's/^/  + /'
fi
if [ -n "$removed" ]; then
    echo "apidiff: INCOMPATIBLE changes (removed or altered declarations):" >&2
    echo "$removed" | sed 's/^/  - /' >&2
    echo "apidiff: if intentional, document the break and run 'make api-baseline' (or APIDIFF=off for one run)" >&2
    exit 1
fi
echo "apidiff: ok ($(wc -l < "$baseline" | tr -d ' ') declarations)"
