#!/bin/sh
# apidiff.sh — gate incompatible changes to the public cliffguard package.
#
# Preferred tool: golang.org/x/exp/apidiff (run against the previous commit)
# when an `apidiff` binary is on PATH. Offline fallback (the default in this
# repo's hermetic build): dump the exported API surface with tools/apicheck
# and diff it against the checked-in baseline api/cliffguard.api.
#
#   - A baseline line missing from the current dump  -> incompatible, FAIL.
#   - A current line missing from the baseline       -> addition, allowed
#     (printed as a reminder to refresh the baseline).
#
# Escape hatches for intentional breaks:
#   APIDIFF=off make ci        # skip the gate for one run
#   make api-baseline          # accept the current surface as the new baseline
#
# Both are meant to be used together with a PR description that calls out the
# break (this is what the observability PR did for New/NewWithMetric growing
# an error result and FilterDesignable gaining a ctx parameter).
set -eu
LC_ALL=C
export LC_ALL # comm needs the same collation apicheck sorted with

if [ "${APIDIFF:-on}" = "off" ]; then
    echo "apidiff: skipped (APIDIFF=off)"
    exit 0
fi

cd "$(dirname "$0")/.."

# diff_surface <baseline> <current-dump> <what>
# FAILs on removed lines, prints additions as a reminder.
diff_surface() {
    baseline=$1; current=$2; what=$3

    if [ ! -f "$baseline" ]; then
        echo "apidiff: no baseline at $baseline; run 'make api-baseline' to create it" >&2
        return 1
    fi

    # Sort defensively: a hand-edited baseline must still diff, not crash comm.
    base_sorted=$(mktemp)
    cur_sorted=$(mktemp)
    sort "$baseline" > "$base_sorted"
    sort "$current" > "$cur_sorted"

    removed=$(comm -23 "$base_sorted" "$cur_sorted")
    added=$(comm -13 "$base_sorted" "$cur_sorted")
    rm -f "$base_sorted" "$cur_sorted"

    if [ -n "$added" ]; then
        echo "apidiff: compatible $what additions (refresh with 'make api-baseline'):"
        echo "$added" | sed 's/^/  + /'
    fi
    if [ -n "$removed" ]; then
        echo "apidiff: INCOMPATIBLE $what changes (removed or altered lines):" >&2
        echo "$removed" | sed 's/^/  - /' >&2
        echo "apidiff: if intentional, document the break and run 'make api-baseline' (or APIDIFF=off for one run)" >&2
        return 1
    fi
    echo "apidiff: $what ok ($(wc -l < "$baseline" | tr -d ' ') lines)"
}

go_cur=$(mktemp)
http_cur=$(mktemp)
trap 'rm -f "$go_cur" "$http_cur"' EXIT

go run ./tools/apicheck . > "$go_cur"
go run ./tools/apicheck -routes > "$http_cur"

diff_surface api/cliffguard.api "$go_cur" "Go surface"
diff_surface api/http.api "$http_cur" "HTTP /v1 surface"
