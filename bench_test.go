// Benchmarks reproducing every table and figure of the paper's evaluation
// (Section 6 and Appendix A). Each benchmark regenerates one artifact and
// prints the same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison. See DESIGN.md for the experiment index.
//
// Run everything:
//
//	go test -bench=. -benchmem -timeout 0 .
//
// Individual artifacts:
//
//	go test -bench=BenchmarkFigure7a -timeout 0 .
package cliffguard_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"cliffguard/internal/bench"
	"cliffguard/internal/datagen"
	"cliffguard/internal/distance"
	"cliffguard/internal/schema"
	"cliffguard/internal/wlgen"
)

// Experiment-wide constants (Section 6.1 scale, see DESIGN.md).
const (
	benchSeed    = 42
	gammaVertica = 0.002
	gammaDBMSX   = 0.0008
)

// Workload sets and scenarios are generated once and shared across
// benchmarks; the experiments themselves are deterministic.
var (
	whOnce    sync.Once
	warehouse *schema.Schema

	setMu sync.Mutex
	sets  = map[string]*wlgen.Set{}
	scens = map[string]*bench.Scenario{}

	printedMu sync.Mutex
	printed   = map[string]bool{}
)

// printOnce gates table output to one copy per benchmark, however many times
// the benchmark framework re-invokes the function while growing b.N.
func printOnce(b *testing.B, emit func()) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[b.Name()] {
		return
	}
	printed[b.Name()] = true
	emit()
}

func benchSchema() *schema.Schema {
	whOnce.Do(func() { warehouse = datagen.Warehouse(1) })
	return warehouse
}

func benchSet(b *testing.B, name string) *wlgen.Set {
	b.Helper()
	setMu.Lock()
	defer setMu.Unlock()
	if s, ok := sets[name]; ok {
		return s
	}
	var cfg *wlgen.Config
	switch name {
	case "R1":
		cfg = wlgen.R1Config(benchSchema(), benchSeed)
	case "S1":
		cfg = wlgen.S1Config(benchSchema(), benchSeed)
	case "S2":
		cfg = wlgen.S2Config(benchSchema(), benchSeed)
	}
	set, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	sets[name] = set
	return set
}

func benchScenario(b *testing.B, engine, wl string) *bench.Scenario {
	b.Helper()
	set := benchSet(b, wl)
	setMu.Lock()
	defer setMu.Unlock()
	key := engine + "/" + wl
	if sc, ok := scens[key]; ok {
		return sc
	}
	var sc *bench.Scenario
	if engine == "vertica" {
		sc = bench.Vertica(set, gammaVertica, benchSeed)
	} else {
		sc = bench.DBMSX(set, gammaDBMSX, benchSeed)
	}
	scens[key] = sc
	return sc
}

// reportMetrics reports the key comparison series as benchmark metrics.
func reportMetrics(b *testing.B, results []bench.DesignerResult) {
	for _, r := range results {
		switch r.Name {
		case "Existing":
			b.ReportMetric(r.AvgMs, "existing_avg_ms")
			b.ReportMetric(r.MaxMs, "existing_max_ms")
		case "CliffGuard":
			b.ReportMetric(r.AvgMs, "cliffguard_avg_ms")
			b.ReportMetric(r.MaxMs, "cliffguard_max_ms")
		case "FutureKnowing":
			b.ReportMetric(r.AvgMs, "future_avg_ms")
		case "NoDesign":
			b.ReportMetric(r.AvgMs, "nodesign_avg_ms")
		}
	}
}

// BenchmarkTable1_WorkloadStats regenerates Table 1: min/max/avg/std of
// delta_euclidean between consecutive 28-day windows for R1, S1 and S2.
func BenchmarkTable1_WorkloadStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1([]*wlgen.Set{
			benchSet(b, "R1"), benchSet(b, "S1"), benchSet(b, "S2"),
		})
		if i == 0 {
			printOnce(b, func() { bench.PrintTable1(os.Stdout, rows) })
			b.ReportMetric(rows[0].Avg, "r1_avg_delta")
			b.ReportMetric(rows[1].Avg, "s1_avg_delta")
			b.ReportMetric(rows[2].Avg, "s2_avg_delta")
		}
	}
}

// BenchmarkFigure5_TemplateOverlap regenerates Figure 5: the fraction of
// queries in templates shared between windows, by window size and lag.
func BenchmarkFigure5_TemplateOverlap(b *testing.B) {
	set := benchSet(b, "R1")
	for i := 0; i < b.N; i++ {
		series := bench.Figure5(set, []int{7, 14, 21, 28}, 12)
		if i == 0 {
			printOnce(b, func() { bench.PrintOverlap(os.Stdout, series) })
			b.ReportMetric(series[0].ByLag[0], "overlap_7d_lag1")
			b.ReportMetric(series[3].ByLag[0], "overlap_28d_lag1")
		}
	}
}

// BenchmarkFigure6_DistanceSoundness regenerates Figure 6: performance decay
// of a window on another window's design, versus their distance.
func BenchmarkFigure6_DistanceSoundness(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	for i := 0; i < b.N; i++ {
		res, err := sc.Figure6(6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() { bench.PrintSoundness(os.Stdout, res, 8) })
			b.ReportMetric(res.Pearson, "pearson")
			b.ReportMetric(res.Spearman, "spearman")
		}
	}
}

func benchComparison(b *testing.B, engine, wl, title string) {
	sc := benchScenario(b, engine, wl)
	for i := 0; i < b.N; i++ {
		results, err := sc.CompareDesigners(bench.AllDesigners)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() { bench.PrintComparison(os.Stdout, title, results) })
			reportMetrics(b, results)
		}
	}
}

// BenchmarkFigure7a_VerticaR1 regenerates Figure 7(a): the six designers on
// the drifting real-world-like workload R1, columnar engine.
func BenchmarkFigure7a_VerticaR1(b *testing.B) {
	benchComparison(b, "vertica", "R1", "Figure 7a: R1 on Vertica-sim")
}

// BenchmarkFigure7b_VerticaS1 regenerates Figure 7(b): the near-static
// workload S1, where all designers should be close.
func BenchmarkFigure7b_VerticaS1(b *testing.B) {
	benchComparison(b, "vertica", "S1", "Figure 7b: S1 on Vertica-sim")
}

// BenchmarkFigure7c_VerticaS2 regenerates Figure 7(c): the uniformly
// drifting workload S2.
func BenchmarkFigure7c_VerticaS2(b *testing.B) {
	benchComparison(b, "vertica", "S2", "Figure 7c: S2 on Vertica-sim")
}

// BenchmarkFigure8_GammaR1 regenerates Figure 8: the robustness knob sweep
// on R1.
func BenchmarkFigure8_GammaR1(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	gammas := []float64{0.0005, 0.001, 0.002, 0.0035}
	for i := 0; i < b.N; i++ {
		points, exAvg, exMax, err := sc.GammaSweep(gammas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 8: Gamma sweep on R1\n")
				bench.PrintSweep(os.Stdout, "Gamma", points)
			})
			b.ReportMetric(exAvg, "existing_avg_ms")
			b.ReportMetric(exMax, "existing_max_ms")
			var best float64 = points[0].AvgMs
			for _, p := range points {
				if p.AvgMs < best {
					best = p.AvgMs
				}
			}
			b.ReportMetric(best, "best_cliffguard_avg_ms")
		}
	}
}

// BenchmarkFigure9_GammaS2 regenerates Figure 9: the Gamma sweep on S2.
func BenchmarkFigure9_GammaS2(b *testing.B) {
	sc := benchScenario(b, "vertica", "S2")
	gammas := []float64{0.0005, 0.001, 0.002, 0.004, 0.008}
	for i := 0; i < b.N; i++ {
		points, exAvg, _, err := sc.GammaSweep(gammas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 9: Gamma sweep on S2\n")
				bench.PrintSweep(os.Stdout, "Gamma", points)
			})
			b.ReportMetric(exAvg, "existing_avg_ms")
		}
	}
}

// BenchmarkFigure10_DBMSXR1 regenerates Figure 10: the six designers on R1,
// row-store engine.
func BenchmarkFigure10_DBMSXR1(b *testing.B) {
	benchComparison(b, "dbmsx", "R1", "Figure 10: R1 on DBMS-X-sim")
}

// BenchmarkFigure11_DistanceAblation regenerates Figure 11 (Appendix A.1):
// CliffGuard under each distance function.
func BenchmarkFigure11_DistanceAblation(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	for i := 0; i < b.N; i++ {
		results, err := sc.DistanceAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 11: distance-function ablation on R1\n")
				bench.PrintAblation(os.Stdout, results)
			})
		}
	}
}

// BenchmarkFigure12_SampleSize regenerates Figure 12 (Appendix A.2): the
// neighborhood sample-count sweep.
func BenchmarkFigure12_SampleSize(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	sizes := []int{1, 5, 10, 20, 40, 80}
	for i := 0; i < b.N; i++ {
		points, err := sc.SampleSizeSweep(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 12: sample-size sweep on R1\n")
				bench.PrintSweep(os.Stdout, "samples (n)", points)
			})
		}
	}
}

// BenchmarkFigure13_Iterations regenerates Figure 13 (Appendix A.2): the
// iteration-count sweep.
func BenchmarkFigure13_Iterations(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	iters := []int{1, 2, 3, 5, 8, 12, 18, 25}
	for i := 0; i < b.N; i++ {
		points, err := sc.IterationSweep(iters)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 13: iteration sweep on R1\n")
				bench.PrintSweep(os.Stdout, "iterations", points)
			})
		}
	}
}

// BenchmarkFigure14_OfflineTime regenerates Figure 14 (Appendix A.4):
// per-designer offline design time versus modeled deployment time.
func BenchmarkFigure14_OfflineTime(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	for i := 0; i < b.N; i++ {
		results, err := sc.Figure14(bench.AllDesigners)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 14: offline time per designer\n")
				bench.PrintTiming(os.Stdout, results)
			})
			for _, r := range results {
				if r.Name == "CliffGuard" {
					b.ReportMetric(r.DesignTime.Seconds(), "cliffguard_design_s")
				}
				if r.Name == "Existing" {
					b.ReportMetric(r.DesignTime.Seconds(), "existing_design_s")
				}
			}
		}
	}
}

// BenchmarkFigure15a_DBMSXS1 regenerates Figure 15(a) (Appendix A.3).
func BenchmarkFigure15a_DBMSXS1(b *testing.B) {
	benchComparison(b, "dbmsx", "S1", "Figure 15a: S1 on DBMS-X-sim")
}

// BenchmarkFigure15b_DBMSXS2 regenerates Figure 15(b) (Appendix A.3).
func BenchmarkFigure15b_DBMSXS2(b *testing.B) {
	benchComparison(b, "dbmsx", "S2", "Figure 15b: S2 on DBMS-X-sim")
}

// BenchmarkFigure16_LatencyMetric regenerates Figure 16 (Appendix C): the
// latency-aware metric's monotonicity at omega 0.1 and 0.2.
func BenchmarkFigure16_LatencyMetric(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	for i := 0; i < b.N; i++ {
		results, err := sc.Figure16([]float64{0.1, 0.2}, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Figure 16: latency-aware metric\n")
				bench.PrintLatencyMetric(os.Stdout, results)
			})
			b.ReportMetric(results[0].Spearman, "spearman_w01")
			b.ReportMetric(results[1].Spearman, "spearman_w02")
		}
	}
}

// BenchmarkMicro_DistanceEuclidean measures the sparse delta_euclidean
// computation itself (the O(T^2 n/64) inner kernel every experiment leans on).
func BenchmarkMicro_DistanceEuclidean(b *testing.B) {
	set := benchSet(b, "R1")
	m := distance.NewEuclidean(benchSchema().NumColumns())
	w1, w2 := set.Months[0], set.Months[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Distance(w1, w2)
	}
}

// BenchmarkMicro_NominalDesign measures one nominal designer invocation on a
// full window.
func BenchmarkMicro_NominalDesign(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	w := sc.DesignableQueries(sc.Windows()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Nominal.Design(context.Background(), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_CliffGuardVariants quantifies the contribution of this
// reproduction's implementation choices (DESIGN.md Section 5): the default
// loop versus the paper-literal no-accumulation move, the k=1 narrow
// perturbation sets, and hedging all neighbors instead of the worst 20%.
func BenchmarkAblation_CliffGuardVariants(b *testing.B) {
	sc := benchScenario(b, "vertica", "R1")
	for i := 0; i < b.N; i++ {
		variants, err := sc.CliffGuardAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printOnce(b, func() {
				os.Stdout.WriteString("Ablation: CliffGuard loop variants on R1\n")
				for _, v := range variants {
					fmt.Fprintf(os.Stdout, "%-22s %8.0f ms avg %8.0f ms max\n", v.Name, v.AvgMs, v.MaxMs)
				}
			})
			for _, v := range variants {
				if v.Name == "default" {
					b.ReportMetric(v.AvgMs, "default_avg_ms")
				}
				if v.Name == "no-accumulation" {
					b.ReportMetric(v.AvgMs, "noaccum_avg_ms")
				}
			}
		}
	}
}
